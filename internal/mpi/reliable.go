package mpi

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"parma/internal/obs"
)

// The reliable layer turns a lossy, reordering, duplicating transport (the
// FaultTransport, or a real network) back into the FIFO exactly-once
// channel the collectives assume:
//
//   - every data frame carries a per-destination sequence number;
//   - the receiver acknowledges every data frame (including duplicates),
//     delivers in sequence order, holds early frames back, and drops
//     duplicates — so delivery is idempotent and non-overtaking per peer;
//   - the sender retries unacknowledged frames with exponential backoff
//     plus jitter, bounded by MaxAttempts, and reports a peer that never
//     acknowledges as a typed *RankDeadError;
//   - a heartbeat goroutine keeps silent-but-alive peers distinguishable
//     from dead ones: any frame from a peer refreshes its last-seen clock,
//     and a Recv that waits past SuspectAfter with a silent peer returns
//     *RankDeadError instead of hanging forever.
//
// Frame layout: magic kind byte, little-endian uint64 sequence number,
// payload. Acks and heartbeats travel on the reserved control tag.

const (
	kRaw       byte = 0x00 // unframed payload (FaultTransport-internal)
	kData      byte = 0xA1 // acknowledged, sequence-ordered payload
	kAck       byte = 0xA2 // acknowledges the seq in the header
	kHeartbeat byte = 0xA3 // liveness beacon, never delivered
	kDataNoAck byte = 0xA4 // fire-and-forget payload, deduplicated only
	kReset     byte = 0xA5 // sequence resync: expect the seq in the header next
	kResetAck  byte = 0xA6 // acknowledges a kReset (separate from data acks)
)

const frameHeaderLen = 9

// ctlTag carries acks and heartbeats, above the collective tag space.
const ctlTag = 1<<28 + 15

func encodeFrame(kind byte, seq uint64, payload []byte) []byte {
	out := make([]byte, frameHeaderLen+len(payload))
	out[0] = kind
	binary.LittleEndian.PutUint64(out[1:], seq)
	copy(out[frameHeaderLen:], payload)
	return out
}

// parseFrameHeader recognizes reliable-layer frames. ok is false for raw
// payloads (no magic kind byte or too short).
func parseFrameHeader(data []byte) (kind byte, seq uint64, ok bool) {
	if len(data) < frameHeaderLen {
		return 0, 0, false
	}
	switch data[0] {
	case kData, kAck, kHeartbeat, kDataNoAck, kReset, kResetAck:
		return data[0], binary.LittleEndian.Uint64(data[1:]), true
	}
	return 0, 0, false
}

// ReliableConfig tunes retries, deadlines, and the failure detector. The
// zero value of every field selects a working default.
type ReliableConfig struct {
	// MaxAttempts bounds delivery attempts per frame. Zero selects 8.
	MaxAttempts int
	// RetryBase is the first ack-wait window; it doubles per attempt with
	// up to 50% jitter. Zero selects 2ms.
	RetryBase time.Duration
	// RetryMax caps the per-attempt ack-wait window. Zero selects 250ms.
	RetryMax time.Duration
	// OpDeadline bounds every Recv without an explicit deadline (and so
	// every collective's individual receives). Zero means no deadline.
	OpDeadline time.Duration
	// HeartbeatEvery is the liveness beacon period. Zero selects 25ms;
	// negative disables heartbeats (and with them the failure detector).
	HeartbeatEvery time.Duration
	// SuspectAfter declares a peer dead when no frame from it has arrived
	// for this long while a Recv is waiting on it. Zero selects
	// 12*HeartbeatEvery; negative disables the detector.
	SuspectAfter time.Duration
	// Seed drives retry jitter (timing only — never delivery semantics).
	Seed int64
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 25 * time.Millisecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 12 * c.HeartbeatEvery
	}
	return c
}

// detectorOn reports whether the failure detector is active.
func (c ReliableConfig) detectorOn() bool {
	return c.HeartbeatEvery > 0 && c.SuspectAfter > 0
}

// reliableTransport implements Transport (plus the deadline, no-ack, and
// liveness extensions) over any inner transport that supports deadline
// receives. All sequencing state is owned by the rank's goroutine; only
// the heartbeat sender runs concurrently, and it touches nothing but
// inner.Send (which every transport serializes internally).
type reliableTransport struct {
	inner   Transport
	innerDL deadlineTransport
	rank    int
	size    int
	cfg     ReliableConfig

	nextSeq   []uint64             // per-dst data sequence
	needReset []bool               // per-dst: a failed Send burned a seq; resync before new data
	noackSeq  []uint64             // per-dst no-ack sequence
	expect    []uint64             // per-src next in-order data seq
	ooo       []map[uint64]message // per-src early frames awaiting their turn
	noackSeen []map[uint64]bool    // per-src delivered no-ack seqs
	pending   []message            // in-order deliverables awaiting a matching Recv
	lastSeen  []time.Time          // per-src last frame arrival

	rng    *rand.Rand
	hbStop chan struct{}
	hbDone chan struct{}
}

// newReliable wraps inner for one rank. inner must support deadline
// receives (all transports in this package do).
func newReliable(inner Transport, rank, size int, cfg ReliableConfig) (*reliableTransport, error) {
	dl, ok := inner.(deadlineTransport)
	if !ok {
		return nil, fmt.Errorf("mpi: reliable layer needs a deadline-capable transport, got %T", inner)
	}
	cfg = cfg.withDefaults()
	t := &reliableTransport{
		inner:     inner,
		innerDL:   dl,
		rank:      rank,
		size:      size,
		cfg:       cfg,
		nextSeq:   make([]uint64, size),
		needReset: make([]bool, size),
		noackSeq:  make([]uint64, size),
		expect:    make([]uint64, size),
		ooo:       make([]map[uint64]message, size),
		noackSeen: make([]map[uint64]bool, size),
		lastSeen:  make([]time.Time, size),
		rng:       rand.New(rand.NewSource(cfg.Seed ^ int64(rank)<<17)),
		hbStop:    make(chan struct{}),
		hbDone:    make(chan struct{}),
	}
	now := time.Now()
	for i := range t.lastSeen {
		t.lastSeen[i] = now
	}
	if cfg.HeartbeatEvery > 0 && size > 1 {
		go t.heartbeat()
	} else {
		close(t.hbDone)
	}
	return t, nil
}

// heartbeat broadcasts liveness beacons until Close.
func (t *reliableTransport) heartbeat() {
	defer close(t.hbDone)
	tick := time.NewTicker(t.cfg.HeartbeatEvery)
	defer tick.Stop()
	frame := encodeFrame(kHeartbeat, 0, nil)
	for {
		select {
		case <-t.hbStop:
			return
		case <-tick.C:
			for p := 0; p < t.size; p++ {
				if p == t.rank {
					continue
				}
				// Beacons are best-effort; a crashed or closed path just
				// means this rank goes quiet, which is the signal.
				//parmavet:allow mpierr -- dropped beacons ARE the failure signal
				_ = t.inner.Send(p, ctlTag, frame)
			}
		}
	}
}

// Close stops the heartbeat sender and forwards to the inner transport.
func (t *reliableTransport) Close() error {
	select {
	case <-t.hbStop:
	default:
		close(t.hbStop)
	}
	<-t.hbDone
	if c, ok := t.inner.(transportCloser); ok {
		return c.Close()
	}
	return nil
}

// backoff returns the ack-wait window for the given 1-based attempt:
// RetryBase doubled per attempt, capped at RetryMax, plus up to 50% jitter.
func (t *reliableTransport) backoff(attempt int) time.Duration {
	d := t.cfg.RetryBase << (attempt - 1)
	if d > t.cfg.RetryMax || d <= 0 {
		d = t.cfg.RetryMax
	}
	return d + time.Duration(t.rng.Int63n(int64(d)/2+1))
}

// Send delivers data to dst exactly once (from the receiver's point of
// view), retrying unacknowledged frames with backoff. A peer that never
// acknowledges within MaxAttempts is reported dead. A failed Send burns
// its sequence number; the next Send to the same peer resynchronizes
// first, so a peer that was merely slow or partitioned (and later
// rejoins) does not park every subsequent frame in its reorder buffer
// waiting for the gap to fill.
func (t *reliableTransport) Send(dst, tag int, data []byte) error {
	if t.needReset[dst] {
		if err := t.resync(dst); err != nil {
			return err
		}
	}
	seq := t.nextSeq[dst]
	t.nextSeq[dst]++
	frame := encodeFrame(kData, seq, data)
	for attempt := 1; attempt <= t.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			obs.Add("mpi/send_retries", 1)
		}
		if err := t.inner.Send(dst, tag, frame); err != nil {
			return err // own crash or closed world: not retryable
		}
		deadline := time.Now().Add(t.backoff(attempt))
		acked, err := t.awaitAck(dst, seq, kAck, deadline)
		if err != nil {
			return err
		}
		if acked {
			return nil
		}
	}
	t.needReset[dst] = true
	obs.Add("mpi/rank_dead_detected", 1)
	return &RankDeadError{Rank: dst, Reason: fmt.Sprintf("%d send attempts unacknowledged", t.cfg.MaxAttempts)}
}

// resync realigns dst's expected sequence after a failed Send burned one
// or more numbers. The kReset frame tells the receiver "my next data seq
// is N": it advances expect past the gap and discards stale early frames,
// so delivery resumes whether or not the burned frame ever arrived. The
// handshake is acked on a dedicated kind (kResetAck) so a duplicated
// reset ack can never satisfy a data Send whose frame was lost.
func (t *reliableTransport) resync(dst int) error {
	seq := t.nextSeq[dst]
	frame := encodeFrame(kReset, seq, nil)
	for attempt := 1; attempt <= t.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			obs.Add("mpi/send_retries", 1)
		}
		if err := t.inner.Send(dst, ctlTag, frame); err != nil {
			return err // own crash or closed world: not retryable
		}
		deadline := time.Now().Add(t.backoff(attempt))
		acked, err := t.awaitAck(dst, seq, kResetAck, deadline)
		if err != nil {
			return err
		}
		if acked {
			t.needReset[dst] = false
			obs.Add("mpi/seq_resync", 1)
			return nil
		}
	}
	obs.Add("mpi/rank_dead_detected", 1)
	return &RankDeadError{Rank: dst, Reason: fmt.Sprintf("%d resync attempts unacknowledged", t.cfg.MaxAttempts)}
}

// awaitAck pumps incoming frames until an ack of the given kind for
// (dst, seq) arrives or the deadline passes. Data frames arriving
// meanwhile are acked and buffered, so two ranks mid-Send at each other
// cannot deadlock.
func (t *reliableTransport) awaitAck(dst int, seq uint64, want byte, deadline time.Time) (bool, error) {
	for {
		raw, src, tag, timedOut, err := t.innerDL.RecvDeadline(AnySource, AnyTag, deadline)
		if err != nil {
			return false, err
		}
		if timedOut {
			return false, nil
		}
		ackSrc, ackSeq, ackKind, err := t.processFrame(src, tag, raw)
		if err != nil {
			return false, err
		}
		if ackKind == want && ackSrc == dst && ackSeq == seq {
			return true, nil
		}
	}
}

// SendNoAck delivers data best-effort: deduplicated on receive but neither
// ordered nor retried. Used for idempotent streams (checkpoints) where a
// lost frame only costs recomputation.
func (t *reliableTransport) SendNoAck(dst, tag int, data []byte) error {
	seq := t.noackSeq[dst]
	t.noackSeq[dst]++
	return t.inner.Send(dst, tag, encodeFrame(kDataNoAck, seq, data))
}

// processFrame handles one raw arrival: refresh liveness, ack and order
// data, dedup, and stash deliverables. For ack frames (kAck, kResetAck)
// it returns the (src, seq, kind) triple so a waiting Send or resync can
// match it; ackKind is zero otherwise.
func (t *reliableTransport) processFrame(src, tag int, raw []byte) (ackSrc int, ackSeq uint64, ackKind byte, err error) {
	if src >= 0 && src < t.size {
		t.lastSeen[src] = time.Now()
	}
	kind, seq, framed := parseFrameHeader(raw)
	if !framed {
		// Raw payload from a non-reliable peer: deliver as-is.
		t.pending = append(t.pending, message{src: src, tag: tag, data: raw})
		return 0, 0, 0, nil
	}
	payload := raw[frameHeaderLen:]
	switch kind {
	case kHeartbeat:
		// Liveness only.
	case kAck, kResetAck:
		return src, seq, kind, nil
	case kReset:
		// Always ack — the sender retries the reset until acked. expect
		// only moves forward: a stale duplicate must not rewind it, or
		// already-delivered data would be delivered again on retransmit.
		if err := t.inner.Send(src, ctlTag, encodeFrame(kResetAck, seq, nil)); err != nil {
			return 0, 0, 0, err
		}
		if seq > t.expect[src] {
			obs.Add("mpi/seq_resync", 1)
			// Early frames below the new base are from burned sends the
			// peer has given up on; they will never be completed.
			for s := range t.ooo[src] {
				if s < seq {
					delete(t.ooo[src], s)
				}
			}
			t.expect[src] = seq
			t.drainOOO(src)
		}
	case kDataNoAck:
		seen := t.noackSeen[src]
		if seen == nil {
			seen = map[uint64]bool{}
			t.noackSeen[src] = seen
		}
		if seen[seq] {
			obs.Add("mpi/dedup_dropped", 1)
			return 0, 0, 0, nil
		}
		seen[seq] = true
		t.pending = append(t.pending, message{src: src, tag: tag, data: payload})
	case kData:
		// Always ack — the sender may be retrying a frame whose first ack
		// was lost.
		if err := t.inner.Send(src, ctlTag, encodeFrame(kAck, seq, nil)); err != nil {
			return 0, 0, 0, err
		}
		switch {
		case seq < t.expect[src]:
			obs.Add("mpi/dedup_dropped", 1)
		case seq == t.expect[src]:
			t.pending = append(t.pending, message{src: src, tag: tag, data: payload})
			t.expect[src]++
			t.drainOOO(src)
		default:
			if t.ooo[src] == nil {
				t.ooo[src] = map[uint64]message{}
			}
			if _, dup := t.ooo[src][seq]; dup {
				obs.Add("mpi/dedup_dropped", 1)
			} else {
				obs.Add("mpi/reordered_restored", 1)
				t.ooo[src][seq] = message{src: src, tag: tag, data: payload}
			}
		}
	}
	return 0, 0, 0, nil
}

// drainOOO promotes consecutively-sequenced early frames to deliverable.
func (t *reliableTransport) drainOOO(src int) {
	for {
		m, ok := t.ooo[src][t.expect[src]]
		if !ok {
			return
		}
		delete(t.ooo[src], t.expect[src])
		t.pending = append(t.pending, m)
		t.expect[src]++
	}
}

// takePending removes and returns the first pending message matching
// (src, tag).
func (t *reliableTransport) takePending(src, tag int) (message, bool) {
	for i, m := range t.pending {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			t.pending = append(t.pending[:i], t.pending[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// pollSlice is how long one inner wait lasts between detector checks.
func (t *reliableTransport) pollSlice() time.Duration {
	if !t.cfg.detectorOn() {
		return 50 * time.Millisecond
	}
	s := t.cfg.SuspectAfter / 4
	if s < time.Millisecond {
		s = time.Millisecond
	}
	return s
}

// recvMatch blocks for a message matching (src, tag) until the deadline
// (zero = the configured OpDeadline, if any; otherwise forever). It turns
// a silent peer into *RankDeadError and a late one into timedOut=true.
func (t *reliableTransport) recvMatch(src, tag int, deadline time.Time) (message, bool, error) {
	if deadline.IsZero() && t.cfg.OpDeadline > 0 {
		deadline = time.Now().Add(t.cfg.OpDeadline)
	}
	for {
		if m, ok := t.takePending(src, tag); ok {
			return m, false, nil
		}
		slice := time.Now().Add(t.pollSlice())
		if !deadline.IsZero() && deadline.Before(slice) {
			slice = deadline
		}
		raw, asrc, atag, timedOut, err := t.innerDL.RecvDeadline(AnySource, AnyTag, slice)
		if err != nil {
			return message{}, false, err
		}
		if !timedOut {
			if _, _, _, err := t.processFrame(asrc, atag, raw); err != nil {
				return message{}, false, err
			}
			continue
		}
		if src != AnySource && t.cfg.detectorOn() && time.Since(t.lastSeen[src]) > t.cfg.SuspectAfter {
			obs.Add("mpi/rank_dead_detected", 1)
			return message{}, false, &RankDeadError{Rank: src,
				Reason: fmt.Sprintf("no frames for %v", time.Since(t.lastSeen[src]).Round(time.Millisecond))}
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return message{}, true, nil
		}
	}
}

func (t *reliableTransport) Recv(src, tag int) ([]byte, int, error) {
	m, timedOut, err := t.recvMatch(src, tag, time.Time{})
	if err != nil {
		return nil, 0, err
	}
	if timedOut {
		return nil, 0, &OpTimeoutError{Op: "recv", Rank: src}
	}
	return m.data, m.src, nil
}

func (t *reliableTransport) RecvDeadline(src, tag int, deadline time.Time) ([]byte, int, int, bool, error) {
	m, timedOut, err := t.recvMatch(src, tag, deadline)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if timedOut {
		return nil, 0, 0, true, nil
	}
	return m.data, m.src, m.tag, false, nil
}

// drain keeps servicing incoming frames — re-acking retransmits, absorbing
// heartbeats — after the owner's work is done, until stop closes. Without
// it a rank whose final ack was lost would go silent while its peer
// retries, and the peer would falsely declare it dead.
func (t *reliableTransport) drain(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		raw, src, tag, timedOut, err := t.innerDL.RecvDeadline(AnySource, AnyTag, time.Now().Add(5*time.Millisecond))
		if err != nil {
			return
		}
		if !timedOut {
			if _, _, _, err := t.processFrame(src, tag, raw); err != nil {
				return
			}
		}
	}
}

// DrainFor is drain with a time bound, for transports whose process exits
// after the work (the TCP ranks): it gives peers a window to get their
// final retransmits re-acked.
func (t *reliableTransport) DrainFor(d time.Duration) {
	stop := make(chan struct{})
	time.AfterFunc(d, func() { close(stop) })
	t.drain(stop)
}

// PeerIdle returns how long ago the last frame from rank arrived.
func (t *reliableTransport) PeerIdle(rank int) time.Duration {
	if rank < 0 || rank >= t.size {
		return 0
	}
	return time.Since(t.lastSeen[rank])
}

// SuspectAfter exposes the detector threshold for callers (the resilient
// formation) that fold liveness into their own progress decisions.
func (t *reliableTransport) SuspectAfter() time.Duration {
	if !t.cfg.detectorOn() {
		return 0
	}
	return t.cfg.SuspectAfter
}

// Compile-time checks: every transport must stay deadline-capable, or the
// reliable layer and RecvTimeout silently degrade to blocking receives.
var (
	_ deadlineTransport = (*chanTransport)(nil)
	_ deadlineTransport = (*tcpTransport)(nil)
	_ deadlineTransport = (*FaultTransport)(nil)
	_ deadlineTransport = (*reliableTransport)(nil)
	_ transportCloser   = (*reliableTransport)(nil)
	_ noAckSender       = (*reliableTransport)(nil)
	_ livenessProber    = (*reliableTransport)(nil)
)

// Optional capability interfaces the Comm helpers probe for.
type noAckSender interface {
	SendNoAck(dst, tag int, data []byte) error
}

type livenessProber interface {
	PeerIdle(rank int) time.Duration
	SuspectAfter() time.Duration
}
