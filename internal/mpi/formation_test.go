package mpi

import (
	"math/rand"
	"testing"
	"time"

	"parma/internal/circuit"
	"parma/internal/grid"
	"parma/internal/kirchhoff"
)

func formationProblem(tb testing.TB, n int, seed int64) *kirchhoff.Problem {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	r := grid.NewField(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r.Set(i, j, 2000+9000*rng.Float64())
		}
	}
	a := grid.NewSquare(n)
	z, err := circuit.MeasureAll(a, r)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := kirchhoff.NewProblem(a, z, 5)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func TestDistributedFormationCounts(t *testing.T) {
	p := formationProblem(t, 6, 1)
	want := kirchhoff.SystemCensus(p.Array).Equations
	for _, ranks := range []int{1, 2, 4, 7, 16, 64} {
		results := make([]FormationResult, ranks)
		w := NewWorld(ranks, CostModel{})
		errs := w.Run(func(c *Comm) error {
			res, err := DistributedFormation(c, p)
			if err != nil {
				return err
			}
			results[c.Rank()] = res
			return nil
		})
		if err := FirstError(errs); err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		sum := 0
		for _, res := range results {
			sum += res.LocalEquations
			if res.TotalEquations != want {
				t.Fatalf("ranks=%d: total %d, want %d", ranks, res.TotalEquations, want)
			}
		}
		if sum != want {
			t.Fatalf("ranks=%d: local sum %d, want %d", ranks, sum, want)
		}
	}
}

// TestDistributedHashMatchesSerial: XOR of per-rank hashes equals the
// serial whole-system hash, proving no equation is lost or duplicated.
func TestDistributedHashMatchesSerial(t *testing.T) {
	p := formationProblem(t, 5, 2)
	refHash := uint64(0)
	for _, e := range p.FormAll() {
		refHash ^= kirchhoff.Checksum(14695981039346656037, e)
	}
	const ranks = 5
	results := make([]FormationResult, ranks)
	w := NewWorld(ranks, CostModel{})
	errs := w.Run(func(c *Comm) error {
		res, err := DistributedFormation(c, p)
		results[c.Rank()] = res
		return err
	})
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	var got uint64
	for _, res := range results {
		got ^= res.LocalHash
	}
	if got != refHash {
		t.Fatal("distributed hash differs from serial")
	}
}

// TestStartupCostDominatesSmallWorkloads reproduces the Figure-10 qualitative
// claim: with a per-rank startup cost, small problems stop benefiting from
// more ranks while large ones keep scaling.
func TestStartupCostDominatesSmallWorkloads(t *testing.T) {
	model := CostModel{Latency: time.Microsecond, RankStartup: 20 * time.Millisecond}
	small := formationProblem(t, 4, 3)

	makespan := func(p *kirchhoff.Problem, ranks int) float64 {
		w := NewWorld(ranks, model)
		times, errs := w.RunCollect(func(c *Comm) error {
			_, err := DistributedFormation(c, p)
			return err
		})
		if err := FirstError(errs); err != nil {
			t.Fatal(err)
		}
		return times.Makespan()
	}

	small1 := makespan(small, 1)
	small64 := makespan(small, 64)
	// The startup floor (20 ms) dwarfs a 4x4 formation; 64 ranks cannot be
	// meaningfully faster than 1.
	if small64 < small1*0.5 {
		t.Fatalf("small workload sped up 64x ranks: %v -> %v", small1, small64)
	}
	if small64 < 0.020 {
		t.Fatalf("makespan %v below the startup floor", small64)
	}
}
