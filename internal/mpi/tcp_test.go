package mpi

import (
	"bufio"
	"encoding/binary"
	"net"

	"fmt"
	"math"
	"parma/internal/obs"
	"sync"
	"testing"
	"time"
)

// runTCPWorld spins up a coordinator plus size in-process ranks over real
// TCP loopback connections and runs fn SPMD.
func runTCPWorld(t *testing.T, size int, fn func(c *Comm) error) {
	t.Helper()
	co, err := NewCoordinator("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve() }()

	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, closeFn, err := DialTCP(co.Addr(), r, size, CostModel{})
			if err != nil {
				errs[r] = err
				return
			}
			defer closeFn()
			errs[r] = fn(comm)
		}(r)
	}
	wg.Wait()
	if err := FirstError(errs); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not terminate")
	}
}

func TestTCPPointToPoint(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte("over tcp"))
		}
		data, src, err := c.Recv(0, 3)
		if err != nil {
			return err
		}
		if string(data) != "over tcp" || src != 0 {
			return fmt.Errorf("got %q from %d", data, src)
		}
		return nil
	})
}

func TestTCPCollectives(t *testing.T) {
	const size = 5
	runTCPWorld(t, size, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		all, err := c.AllreduceSum([]float64{float64(c.Rank() + 1)})
		if err != nil {
			return err
		}
		want := float64(size*(size+1)) / 2
		if math.Abs(all[0]-want) > 1e-12 {
			return fmt.Errorf("allreduce = %v, want %v", all[0], want)
		}
		var payload []byte
		if c.Rank() == 0 {
			payload = []byte("cfg")
		}
		data, err := c.Bcast(0, payload)
		if err != nil {
			return err
		}
		if string(data) != "cfg" {
			return fmt.Errorf("bcast got %q", data)
		}
		return nil
	})
}

func TestTCPLargePayload(t *testing.T) {
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	runTCPWorld(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, big)
		}
		data, _, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if len(data) != len(big) {
			return fmt.Errorf("got %d bytes, want %d", len(data), len(big))
		}
		for i := range data {
			if data[i] != big[i] {
				return fmt.Errorf("corruption at byte %d", i)
			}
		}
		return nil
	})
}

func TestCoordinatorRejectsBadRank(t *testing.T) {
	co, err := NewCoordinator("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve() }()
	if _, _, err := DialTCP(co.Addr(), 7, 2, CostModel{}); err != nil {
		t.Fatalf("dial itself should succeed, handshake happens server-side: %v", err)
	}
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("coordinator accepted an out-of-range rank")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not reject the bad rank")
	}
}

// dialRaw opens a raw framed connection to the coordinator and performs
// the rank handshake, bypassing DialTCP so tests can drive the wire
// protocol directly.
func dialRaw(t *testing.T, addr string, rank int) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(int32(rank)))
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestCoordinatorSeversDestinationOnWriteError: when a write to a
// destination fails, the stream may be desynchronized by a partial frame,
// so the coordinator must sever that connection — not leave it half
// written — while continuing to route for the survivors and still
// terminating cleanly (a deliberately severed conn is not an error).
func TestCoordinatorSeversDestinationOnWriteError(t *testing.T) {
	rec := obs.NewRecorder()
	obs.Enable(rec)
	defer obs.Disable()

	co, err := NewCoordinator("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve() }()

	conns := make([]net.Conn, 3)
	for r := range conns {
		conns[r] = dialRaw(t, co.Addr(), r)
	}

	// Rank 2 crashes. Rank 0 keeps sending to it until the coordinator's
	// writes start failing (the first may land in the kernel buffer before
	// the RST arrives); each failure must be counted and must not take the
	// routing loop down.
	conns[2].Close()
	undeliverable := rec.Registry().Counter("mpi/coordinator_undeliverable")
	deadline := time.After(5 * time.Second)
	for undeliverable.Value() == 0 {
		if err := writeFrame(conns[0], 2, 0, 4, []byte("doomed")); err != nil {
			t.Fatalf("rank 0's own connection failed: %v", err)
		}
		select {
		case <-deadline:
			t.Fatal("coordinator never observed a write error to the crashed rank")
		case <-time.After(time.Millisecond):
		}
	}

	// Survivor traffic still flows.
	if err := writeFrame(conns[0], 1, 0, 7, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	_, src, tag, payload, err := readFrame(bufio.NewReader(conns[1]))
	if err != nil || src != 0 || tag != 7 || string(payload) != "alive" {
		t.Fatalf("survivor frame = (src=%d tag=%d %q, %v), want (0, 7, \"alive\")", src, tag, payload, err)
	}

	// Clean shutdown: the severed destination must not surface as a Serve
	// error, only genuine protocol violations should.
	conns[0].Close()
	conns[1].Close()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("coordinator error after sever: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not terminate after survivors closed")
	}
}
