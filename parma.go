// Package parma is a Go implementation of Parma: topological modeling and
// parallelization of multidimensional data on microelectrode arrays (MEAs).
//
// An m x n MEA has m horizontal and n vertical wires joined by m·n
// point-wise resistors. Parametrizing the device — recovering the unknown
// resistances R from the measured pairwise end-to-end resistances Z — is
// the computational bottleneck of MEA applications such as real-time
// anomaly detection on cell media. Parma models the MEA as an abstract
// simplicial complex, uses its first Betti number ((m−1)(n−1) independent
// Kirchhoff loops) to expose intrinsic parallelism, converts the
// exponential all-paths formulation into a polynomial joint-constraint
// system (2n³ equations for an n x n array), and schedules its formation
// with a family of parallel strategies.
//
// Typical flow:
//
//	a := parma.NewSquareArray(16)
//	r, z, _ := parma.Synthesize(parma.MediumConfig{Rows: 16, Cols: 16, Seed: 1})
//	report := parma.Analyze(a)                     // Betti numbers, cycle basis
//	prob, _ := parma.NewProblem(a, z, 5.0)         // joint-constraint system
//	res := parma.Form(prob, parma.FineGrained{}, parma.FormationOptions{Workers: 8})
//	rec, _ := parma.Recover(a, z, parma.RecoverOptions{})
//	det := parma.Detect(rec.R, parma.DetectOptions{})
//	_ = r // ground truth, available because the data is synthetic
//
// The internal packages implement every substrate from scratch: GF(2) and
// dense/sparse linear algebra, simplicial homology, a physical circuit
// simulator standing in for wet-lab measurements, the exponential path
// baseline, work-stealing and OpenMP-style scheduling, an MPI-like
// message-passing runtime, and the paper's five evaluation figures.
package parma

import (
	"context"
	"io"

	"parma/internal/anomaly"
	"parma/internal/circuit"
	"parma/internal/core"
	"parma/internal/gen"
	"parma/internal/grid"
	"parma/internal/kirchhoff"
	"parma/internal/parallel"
	"parma/internal/sched"
	"parma/internal/solver"
)

// Array is the geometry of an m x n microelectrode array.
type Array = grid.Array

// Field holds one value per resistor position (resistances or measured Z).
type Field = grid.Field

// NewArray returns the geometry of an m x n array.
func NewArray(rows, cols int) Array { return grid.New(rows, cols) }

// NewSquareArray returns an n x n array.
func NewSquareArray(n int) Array { return grid.NewSquare(n) }

// NewField returns a zero field for an m x n array.
func NewField(rows, cols int) *Field { return grid.NewField(rows, cols) }

// UniformField returns a field with every entry set to v.
func UniformField(rows, cols int, v float64) *Field { return grid.UniformField(rows, cols, v) }

// MediumConfig controls synthetic medium generation (the stand-in for
// wet-lab measurement data; see gen for the paper-anchored defaults).
type MediumConfig = gen.Config

// Anomaly is an elliptical region of elevated resistance in a medium.
type Anomaly = gen.Anomaly

// SourceVoltage is the paper's applied end-to-end voltage (5 V).
const SourceVoltage = gen.SourceVoltage

// SynthesizeMedium generates a ground-truth resistance field.
func SynthesizeMedium(cfg MediumConfig) *Field { return gen.Medium(cfg) }

// Synthesize generates a ground-truth resistance field and its measured
// pairwise Z matrix via the physical forward model.
func Synthesize(cfg MediumConfig) (r, z *Field, err error) { return gen.Measurements(cfg) }

// TimeSeries generates the 0/6/12/24-hour measurement protocol with
// anomalies growing exponentially at the given hourly rate.
func TimeSeries(cfg MediumConfig, growthPerHour float64) map[int]*Field {
	return gen.TimeSeries(cfg, growthPerHour)
}

// TruthMask returns the ground-truth anomaly labels of a medium config.
func TruthMask(cfg MediumConfig) [][]bool { return gen.TruthMask(cfg) }

// Measure runs the forward circuit model: the pairwise effective
// resistances Z of an array with a known resistance field.
func Measure(a Array, r *Field) (*Field, error) { return circuit.MeasureAll(a, r) }

// TopologyReport summarizes the algebraic-topological analysis of an MEA:
// Betti numbers, Maxwell's cyclomatic number, Euler characteristic, and
// the fundamental cycle count.
type TopologyReport = core.Report

// Analyze computes the topological report of an array.
func Analyze(a Array) TopologyReport { return core.Analyze(a) }

// VerifyTopology cross-checks every §III invariant on the array (validity
// of the simplicial complex, β₁ = (m−1)(n−1), ∂∘∂ = 0, independence of the
// fundamental cycle basis). It returns nil when all hold.
func VerifyTopology(a Array) error { return core.VerifyInvariants(a) }

// Problem is a joint-constraint formation problem: array + Z + voltage.
type Problem = kirchhoff.Problem

// Equation is one flow-conservation constraint of the system.
type Equation = kirchhoff.Equation

// SystemCensus reports the system size: the paper's 2n³ equations and
// (2n−1)·n² unknowns for square arrays.
func SystemCensus(a Array) kirchhoff.Census { return kirchhoff.SystemCensus(a) }

// NewProblem validates and constructs a formation problem.
func NewProblem(a Array, z *Field, sourceU float64) (*Problem, error) {
	return kirchhoff.NewProblem(a, z, sourceU)
}

// GroundTruthState solves the forward model at a known resistance field,
// producing the assignment under which every formed equation has zero
// residual — the operational meaning of the lossless conversion.
func GroundTruthState(a Array, r *Field, sourceU float64) (*kirchhoff.State, error) {
	return kirchhoff.GroundTruthState(a, r, sourceU)
}

// Formation strategies (§IV–§V): the paper's Single-thread, Parallel,
// Balanced Parallel, and PyMP, plus runtime work-stealing as an ablation.
type (
	// Strategy forms the whole equation system under some schedule.
	Strategy = parallel.Strategy
	// Serial is the Single-thread baseline.
	Serial = parallel.Serial
	// FourWay is the paper's Parallel: one thread per constraint category.
	FourWay = parallel.FourWay
	// Balanced is the paper's Balanced Parallel: deterministic LPT.
	Balanced = parallel.Balanced
	// Stealing is runtime work-stealing over the same tasks.
	Stealing = parallel.Stealing
	// FineGrained is the paper's PyMP-k: equation-level parallelism.
	FineGrained = parallel.FineGrained
)

// FormationOptions configures a strategy run.
type FormationOptions = parallel.Options

// FormationResult reports a formation run.
type FormationResult = parallel.Result

// ChunkPolicy selects OpenMP-style iteration handout for FineGrained.
type ChunkPolicy = sched.Policy

// Chunk policies.
const (
	StaticChunks  = sched.Static
	DynamicChunks = sched.Dynamic
	GuidedChunks  = sched.Guided
)

// Strategies returns one instance of every formation strategy.
func Strategies() []Strategy { return parallel.All() }

// Form runs one strategy over the problem.
func Form(p *Problem, s Strategy, opts FormationOptions) FormationResult { return s.Run(p, opts) }

// WriteEquations forms the system with w workers and streams it to shard
// files in dir — the paper's end-to-end (compute + I/O) workload.
func WriteEquations(p *Problem, dir string, workers int) (int64, error) {
	return parallel.WriteSharded(p, dir, workers, sched.Dynamic, 0)
}

// WriteSystem serializes equations to one writer in the canonical format.
func WriteSystem(w io.Writer, eqs []Equation) (int64, error) { return kirchhoff.WriteSystem(w, eqs) }

// ParseSystem reads equations back from the canonical format.
func ParseSystem(r io.Reader) ([]Equation, error) { return kirchhoff.ParseSystem(r) }

// RecoverOptions configures resistance recovery.
type RecoverOptions = solver.RecoverOptions

// RecoverResult reports a recovery run.
type RecoverResult = solver.RecoverResult

// ErrRecoverCanceled reports a recovery aborted by its context.
var ErrRecoverCanceled = solver.ErrCanceled

// Recover estimates the resistance field from measured Z by
// Levenberg-Marquardt in log-resistance space (strictly positive iterates).
func Recover(a Array, z *Field, opts RecoverOptions) (RecoverResult, error) {
	return solver.Recover(context.Background(), a, z, opts)
}

// RecoverContext is Recover with cancellation: when ctx ends mid-iteration
// the returned error wraps ErrRecoverCanceled and the result carries the
// best iterate reached so far.
func RecoverContext(ctx context.Context, a Array, z *Field, opts RecoverOptions) (RecoverResult, error) {
	return solver.Recover(ctx, a, z, opts)
}

// DetectOptions tunes anomaly detection on a recovered field.
type DetectOptions = anomaly.Options

// Detection is the detection output: mask plus connected regions.
type Detection = anomaly.Detection

// DetectionScore compares predictions against ground truth.
type DetectionScore = anomaly.Score

// Detect thresholds a resistance field and extracts anomalous regions.
func Detect(f *Field, opts DetectOptions) Detection { return anomaly.Detect(f, opts) }

// EvaluateDetection scores a predicted mask against ground truth.
func EvaluateDetection(predicted, truth [][]bool) (DetectionScore, error) {
	return anomaly.Evaluate(predicted, truth)
}
