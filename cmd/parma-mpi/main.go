// Command parma-mpi runs distributed equation formation as genuinely
// separate OS processes over TCP — the multi-process deployment mode that
// stands in for the paper's mpi4py/MPICH cluster runs.
//
// Three modes:
//
//	parma-mpi -launch -ranks 4 -n 12      # coordinator + ranks, one command
//	parma-mpi -serve 127.0.0.1:7077 -ranks 4
//	parma-mpi -connect 127.0.0.1:7077 -rank 2 -ranks 4 -n 12
//
// Launch mode starts a coordinator in-process and re-executes this binary
// once per rank; each rank process connects back, forms its share of the
// joint-constraint system, and participates in the closing allreduce.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"parma/internal/experiments"
	"parma/internal/mpi"
)

func main() {
	launch := flag.Bool("launch", false, "spawn coordinator and all rank processes")
	serve := flag.String("serve", "", "run a coordinator on this address")
	connect := flag.String("connect", "", "connect to a coordinator as a rank")
	rank := flag.Int("rank", -1, "this process's rank (with -connect)")
	ranks := flag.Int("ranks", 4, "world size")
	n := flag.Int("n", 12, "array size (n x n)")
	seed := flag.Int64("seed", 2022, "workload seed")
	flag.Parse()

	var err error
	switch {
	case *launch:
		err = runLaunch(*ranks, *n, *seed)
	case *serve != "":
		err = runServe(*serve, *ranks)
	case *connect != "":
		err = runRank(*connect, *rank, *ranks, *n, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parma-mpi: %v\n", err)
		os.Exit(1)
	}
}

func runServe(addr string, ranks int) error {
	co, err := mpi.NewCoordinator(addr, ranks)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator listening on %s for %d ranks\n", co.Addr(), ranks)
	return co.Serve()
}

func runRank(addr string, rank, ranks, n int, seed int64) error {
	if rank < 0 || rank >= ranks {
		return fmt.Errorf("rank %d outside world of %d", rank, ranks)
	}
	p, err := experiments.BuildProblem(n, seed)
	if err != nil {
		return err
	}
	comm, closeFn, err := mpi.DialTCP(addr, rank, ranks, mpi.CostModel{})
	if err != nil {
		return err
	}
	defer closeFn()
	start := time.Now()
	res, err := mpi.DistributedFormation(comm, p)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d/%d: %d local equations of %d total in %v\n",
		rank, ranks, res.LocalEquations, res.TotalEquations, time.Since(start).Round(time.Millisecond))
	return nil
}

func runLaunch(ranks, n int, seed int64) error {
	co, err := mpi.NewCoordinator("127.0.0.1:0", ranks)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve() }()

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate executable: %w", err)
	}
	procs := make([]*exec.Cmd, ranks)
	for r := 0; r < ranks; r++ {
		cmd := exec.Command(exe,
			"-connect", co.Addr(),
			"-rank", fmt.Sprint(r),
			"-ranks", fmt.Sprint(ranks),
			"-n", fmt.Sprint(n),
			"-seed", fmt.Sprint(seed),
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start rank %d: %w", r, err)
		}
		procs[r] = cmd
	}
	var firstErr error
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if err := <-serveErr; err != nil && firstErr == nil {
		firstErr = fmt.Errorf("coordinator: %w", err)
	}
	if firstErr == nil {
		fmt.Printf("all %d rank processes completed\n", ranks)
	}
	return firstErr
}
