// Command parma-mpi runs distributed equation formation as genuinely
// separate OS processes over TCP — the multi-process deployment mode that
// stands in for the paper's mpi4py/MPICH cluster runs.
//
// Three modes:
//
//	parma-mpi -launch -ranks 4 -n 12      # coordinator + ranks, one command
//	parma-mpi -serve 127.0.0.1:7077 -ranks 4
//	parma-mpi -connect 127.0.0.1:7077 -rank 2 -ranks 4 -n 12
//
// Launch mode starts a coordinator in-process and re-executes this binary
// once per rank; each rank process connects back, forms its share of the
// joint-constraint system, and participates in the closing allreduce.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"parma/internal/experiments"
	"parma/internal/mpi"
	"parma/internal/obs"
)

func main() {
	launch := flag.Bool("launch", false, "spawn coordinator and all rank processes")
	serve := flag.String("serve", "", "run a coordinator on this address")
	connect := flag.String("connect", "", "connect to a coordinator as a rank")
	rank := flag.Int("rank", -1, "this process's rank (with -connect)")
	ranks := flag.Int("ranks", 4, "world size")
	n := flag.Int("n", 12, "array size (n x n)")
	seed := flag.Int64("seed", 2022, "workload seed")
	chaos := flag.String("chaos", "", "seeded fault schedule, e.g. seed=7,drop=0.05,dup=0.05,crash=2@10 (implies -resilient)")
	resilient := flag.Bool("resilient", false, "use the reliable transport and self-healing formation")
	traceDir := flag.String("trace-dir", "", "write one Chrome trace per rank (rank<N>.json) into this directory; rank 0 mints the job trace, the others adopt it from frame metadata")
	flag.Parse()

	var err error
	switch {
	case *launch:
		err = runLaunch(*ranks, *n, *seed, *chaos, *resilient, *traceDir)
	case *serve != "":
		err = runServe(*serve, *ranks)
	case *connect != "":
		err = runRank(*connect, *rank, *ranks, *n, *seed, *chaos, *resilient, *traceDir)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parma-mpi: %v\n", err)
		os.Exit(1)
	}
}

// chaosConfig validates the -chaos/-resilient combination. Chaos implies
// the reliable layer: injected faults without retries and idempotent
// delivery would just wedge the formation.
func chaosConfig(chaosSpec string, resilient bool, ranks int) (*mpi.ChaosSpec, *mpi.ReliableConfig, error) {
	var spec *mpi.ChaosSpec
	if chaosSpec != "" {
		cs, err := mpi.ParseChaos(chaosSpec)
		if err != nil {
			return nil, nil, err
		}
		if cs.CrashRank == 0 {
			return nil, nil, errors.New("crash=0 would kill the formation coordinator; crash a nonzero rank")
		}
		if cs.CrashRank >= ranks {
			return nil, nil, fmt.Errorf("crash rank %d outside world of %d", cs.CrashRank, ranks)
		}
		spec = &cs
		resilient = true
	}
	if !resilient {
		return nil, nil, nil
	}
	return spec, &mpi.ReliableConfig{}, nil
}

func runServe(addr string, ranks int) error {
	co, err := mpi.NewCoordinator(addr, ranks)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator listening on %s for %d ranks\n", co.Addr(), ranks)
	return co.Serve()
}

func runRank(addr string, rank, ranks, n int, seed int64, chaosSpec string, resilient bool, traceDir string) error {
	if rank < 0 || rank >= ranks {
		return fmt.Errorf("rank %d outside world of %d", rank, ranks)
	}
	chaos, reliable, err := chaosConfig(chaosSpec, resilient, ranks)
	if err != nil {
		return err
	}
	p, err := experiments.BuildProblem(n, seed)
	if err != nil {
		return err
	}
	comm, closeFn, err := mpi.DialTCPResilient(addr, rank, ranks, mpi.CostModel{}, chaos, reliable)
	if err != nil {
		return err
	}
	defer closeFn()
	if traceDir != "" {
		// Per-rank distributed tracing: every rank seals its frames with the
		// trace envelope. Rank 0 mints the job's trace id via its root span;
		// the other processes adopt it from the first frame they receive, so
		// the per-rank files merge (parma tracemerge) into one connected tree.
		rec := obs.NewRecorder()
		obs.Enable(rec)
		comm.EnableTracePropagation(obs.TraceContext{})
		var root obs.Span
		if rank == 0 {
			root = comm.StartRootSpan("mpi/job")
		}
		defer func() {
			root.End()
			path := filepath.Join(traceDir, fmt.Sprintf("rank%d.json", rank))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "parma-mpi: rank %d trace: %v\n", rank, err)
				return
			}
			if err := rec.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "parma-mpi: rank %d trace: %v\n", rank, err)
			}
			f.Close()
		}()
	}
	start := time.Now()
	if reliable == nil {
		res, err := mpi.DistributedFormation(comm, p)
		if err != nil {
			return err
		}
		fmt.Printf("rank %d/%d: %d local equations of %d total in %v\n",
			rank, ranks, res.LocalEquations, res.TotalEquations, time.Since(start).Round(time.Millisecond))
		return nil
	}
	res, err := mpi.ResilientFormation(comm, p, mpi.ResilientConfig{})
	if err != nil {
		// A scheduled crash is the experiment working as intended: mark it
		// and exit cleanly so the launcher can tell it from a real failure.
		if errors.Is(err, mpi.ErrCrashed) {
			fmt.Printf("rank %d/%d: crashed by fault injection (%v)\n", rank, ranks, err)
			return nil
		}
		return err
	}
	// Peers may still be retransmitting toward this rank; give their final
	// acks a window before the process (and its connection) goes away.
	comm.DrainFor(500 * time.Millisecond)
	line := fmt.Sprintf("rank %d/%d: %d total equations, system hash %016x in %v",
		rank, ranks, res.TotalEquations, res.SystemHash, time.Since(start).Round(time.Millisecond))
	if rank == 0 && len(res.Dead) > 0 {
		line += fmt.Sprintf(" (dead ranks %v, %d blocks redistributed)", res.Dead, res.Redistributed)
	}
	fmt.Println(line)
	return nil
}

func runLaunch(ranks, n int, seed int64, chaosSpec string, resilient bool, traceDir string) error {
	// Validate up front so a bad chaos grammar fails before any process
	// spawns rather than in every rank at once.
	if _, _, err := chaosConfig(chaosSpec, resilient, ranks); err != nil {
		return err
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return fmt.Errorf("creating -trace-dir: %w", err)
		}
	}
	co, err := mpi.NewCoordinator("127.0.0.1:0", ranks)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve() }()

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locate executable: %w", err)
	}
	procs := make([]*exec.Cmd, ranks)
	for r := 0; r < ranks; r++ {
		args := []string{
			"-connect", co.Addr(),
			"-rank", fmt.Sprint(r),
			"-ranks", fmt.Sprint(ranks),
			"-n", fmt.Sprint(n),
			"-seed", fmt.Sprint(seed),
		}
		if chaosSpec != "" {
			args = append(args, "-chaos", chaosSpec)
		}
		if resilient {
			args = append(args, "-resilient")
		}
		if traceDir != "" {
			args = append(args, "-trace-dir", traceDir)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start rank %d: %w", r, err)
		}
		procs[r] = cmd
	}
	var firstErr error
	for r, cmd := range procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if err := <-serveErr; err != nil && firstErr == nil {
		firstErr = fmt.Errorf("coordinator: %w", err)
	}
	if firstErr == nil {
		fmt.Printf("all %d rank processes completed\n", ranks)
	}
	return firstErr
}
