// Command parmavet is Parma's project-specific static-analysis suite. It
// enforces invariants no generic linter knows about:
//
//	spanend      obs.StartSpan/StartOn results must reach End on every path
//	mpierr       errors from mpi.Comm/World calls may not be discarded
//	floateq      no ==/!= on floats in the numerics packages
//	locksend     no blocking MPI call — direct or through any resolved call
//	             chain — while a sync.Mutex/RWMutex is held
//	httptimeout  http.Server literals must set ReadHeaderTimeout (or ReadTimeout)
//	poolsize     no raw goroutine fan-out loops in the numerics packages;
//	             kernel parallelism goes through mat.ParallelFor
//	retrybound   retry loops that sleep must also terminate
//	ctxspan      no context-blind span starts (obs.StartSpan/StartOn) in the
//	             request-path packages while a context.Context is in scope
//	determinism  no map-iteration-ordered results, unseeded math/rand, or
//	             wall-clock values in the deterministic packages
//	ctxflow      a held context.Context must be threaded: no ctx-blind calls
//	             when a ctx-accepting sibling exists, no context.Background/
//	             TODO on the request path
//	atomicmix    no struct field accessed both via sync/atomic and plainly
//	             anywhere in the program
//	densealloc   no CSR.Dense() densification in the serve-path packages;
//	             the sparse recovery path must stay on the CSR kernels
//
// The interprocedural checks run over a whole-program call graph built
// from the loaded packages (see callgraph.go): static and method calls
// resolve across packages, and per-function summaries (blocks-on-MPI,
// accepts-ctx, ctx sibling, order-sensitive iteration) propagate
// bottom-up to a fixpoint. Function values and interface calls are
// approximated conservatively and documented in docs/static-analysis.md.
//
// Usage:
//
//	parmavet [-json] [-run spanend,mpierr] [-allows] [packages...]
//
// Packages default to ./... . Findings print as file:line:col diagnostics
// (or a JSON array with -json), deterministically ordered by
// file/line/col/analyzer; the exit status is 1 when findings exist, 2 on
// loading or usage errors, 0 on a clean tree. Suppress an intentional
// finding with a `//parmavet:allow <analyzer>` comment on the same line or
// the line above, with a `--`-separated justification. -allows inventories
// every suppression site with its justification (exit 1 when any site has
// none), so the allow list stays auditable in CI artifacts.
//
// The implementation is dependency-free: packages are loaded via `go list
// -json`, parsed with go/parser, and type-checked with go/types, so the
// module's go.mod stays empty. See docs/static-analysis.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("parmavet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	allows := fs.Bool("allows", false, "inventory //parmavet:allow sites instead of running analyzers; exit 1 if any lacks a justification")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected := suite
	if *only != "" {
		byName := map[string]*Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "parmavet: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmavet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "parmavet: no packages matched")
		return 2
	}
	if *allows {
		return runAllows(pkgs, *jsonOut)
	}

	findings := runAnalyzers(pkgs, selected)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "parmavet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "parmavet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}
