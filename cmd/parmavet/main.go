// Command parmavet is Parma's project-specific static-analysis suite. It
// enforces invariants no generic linter knows about:
//
//	spanend      obs.StartSpan/StartOn results must reach End on every path
//	mpierr       errors from mpi.Comm/World calls may not be discarded
//	floateq      no ==/!= on floats in the numerics packages
//	locksend     no blocking MPI call while a sync.Mutex/RWMutex is held
//	httptimeout  http.Server literals must set ReadHeaderTimeout (or ReadTimeout)
//	poolsize     no raw goroutine fan-out loops in the numerics packages;
//	             kernel parallelism goes through mat.ParallelFor
//	ctxspan      no context-blind span starts (obs.StartSpan/StartOn) in the
//	             request-path packages while a context.Context is in scope
//
// Usage:
//
//	parmavet [-json] [-run spanend,mpierr] [packages...]
//
// Packages default to ./... . Findings print as file:line:col diagnostics
// (or a JSON array with -json); the exit status is 1 when findings exist,
// 2 on loading or usage errors, 0 on a clean tree. Suppress an intentional
// finding with a `//parmavet:allow <analyzer>` comment on the same line or
// the line above, ideally with a trailing justification.
//
// The implementation is dependency-free: packages are loaded via `go list
// -json`, parsed with go/parser, and type-checked with go/types, so the
// module's go.mod stays empty. See docs/static-analysis.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("parmavet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected := suite
	if *only != "" {
		byName := map[string]*Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "parmavet: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmavet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "parmavet: no packages matched")
		return 2
	}

	findings := runAnalyzers(pkgs, selected)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "parmavet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "parmavet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}
