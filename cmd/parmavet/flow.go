package main

// A small path-sensitive interpreter over function-body ASTs, shared by
// the spanend and locksend analyzers. It walks statements in control-flow
// order, forking at branches and joining with a "may" union, so a fact
// that holds on any path to a program point survives to that point. Loops
// are approximated as executing zero or one time, which is exact for the
// leak-style properties checked here: a fact left open at the loop's back
// edge also remains open at every later exit. Functions containing goto or
// fallthrough are skipped rather than analyzed wrongly.

import (
	"go/ast"
	"go/token"
)

// flowState maps client-defined keys to lattice values joined by max.
// nil means the program point is unreachable.
type flowState map[any]int

func (s flowState) clone() flowState {
	if s == nil {
		return nil
	}
	out := make(flowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinStates unions two may-states; unreachable (nil) joins as identity.
func joinStates(a, b flowState) flowState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for k, v := range b {
		if v > a[k] {
			a[k] = v
		}
	}
	return a
}

// flowClient receives the engine's callbacks.
type flowClient interface {
	// atom handles a non-control-flow statement's effects.
	atom(st flowState, s ast.Stmt)
	// expr handles the effects of evaluating a condition or case expression.
	expr(st flowState, e ast.Expr)
	// refine narrows st under the assumption that cond evaluated to val.
	refine(st flowState, cond ast.Expr, val bool) flowState
	// exit observes a function exit: an explicit return or falling off the
	// end of the body.
	exit(st flowState, pos token.Pos)
	// terminal reports whether the statement never returns (panic, os.Exit).
	terminal(s ast.Stmt) bool
}

// frame is one enclosing breakable construct (loop, switch, or select).
type frame struct {
	label     string
	isLoop    bool
	breaks    flowState
	continue_ flowState
}

type flowRunner struct {
	client flowClient
	frames []*frame
}

// runFlow analyzes one function body. It reports false when the body uses
// control flow the engine does not model (goto, fallthrough).
func runFlow(client flowClient, body *ast.BlockStmt, entry flowState) bool {
	unsupported := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.FuncLit:
			return false // nested functions are analyzed separately
		case *ast.BranchStmt:
			if b.Tok == token.GOTO || b.Tok == token.FALLTHROUGH {
				unsupported = true
			}
		}
		return !unsupported
	})
	if unsupported {
		return false
	}
	r := &flowRunner{client: client}
	out := r.stmts(entry, body.List, "")
	if out != nil {
		client.exit(out, body.End())
	}
	return true
}

// stmts flows st through a statement list; nil out means the end of the
// list is unreachable.
func (r *flowRunner) stmts(st flowState, list []ast.Stmt, label string) flowState {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		st = r.stmt(st, s, lbl)
		if st == nil {
			return nil
		}
	}
	return st
}

func (r *flowRunner) findFrame(label string, needLoop bool) *frame {
	for i := len(r.frames) - 1; i >= 0; i-- {
		f := r.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (r *flowRunner) stmt(st flowState, s ast.Stmt, label string) flowState {
	switch n := s.(type) {
	case *ast.BlockStmt:
		return r.stmts(st, n.List, "")

	case *ast.LabeledStmt:
		return r.stmt(st, n.Stmt, n.Label.Name)

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			r.client.expr(st, res)
		}
		r.client.exit(st, n.Pos())
		return nil

	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			if f := r.findFrame(labelName(n), false); f != nil {
				f.breaks = joinStates(f.breaks, st.clone())
			}
		case token.CONTINUE:
			if f := r.findFrame(labelName(n), true); f != nil {
				f.continue_ = joinStates(f.continue_, st.clone())
			}
		}
		return nil

	case *ast.IfStmt:
		if n.Init != nil {
			r.client.atom(st, n.Init)
		}
		r.client.expr(st, n.Cond)
		thenSt := r.client.refine(st.clone(), n.Cond, true)
		elseSt := r.client.refine(st.clone(), n.Cond, false)
		thenOut := r.stmts(thenSt, n.Body.List, "")
		if n.Else != nil {
			elseSt = r.stmt(elseSt, n.Else, "")
		}
		return joinStates(thenOut, elseSt)

	case *ast.ForStmt:
		if n.Init != nil {
			r.client.atom(st, n.Init)
		}
		if n.Cond != nil {
			r.client.expr(st, n.Cond)
		}
		f := &frame{label: label, isLoop: true}
		r.frames = append(r.frames, f)
		bodyOut := r.stmts(st.clone(), n.Body.List, "")
		r.frames = r.frames[:len(r.frames)-1]
		bodyOut = joinStates(bodyOut, f.continue_)
		if bodyOut != nil && n.Post != nil {
			r.client.atom(bodyOut, n.Post)
		}
		var out flowState
		if n.Cond != nil {
			out = joinStates(st, bodyOut) // the body may run zero times
		}
		// A condition-less `for { ... }` exits only via break.
		return joinStates(out, f.breaks)

	case *ast.RangeStmt:
		r.client.expr(st, n.X)
		f := &frame{label: label, isLoop: true}
		r.frames = append(r.frames, f)
		bodyOut := r.stmts(st.clone(), n.Body.List, "")
		r.frames = r.frames[:len(r.frames)-1]
		bodyOut = joinStates(bodyOut, f.continue_)
		return joinStates(joinStates(st, bodyOut), f.breaks)

	case *ast.SwitchStmt:
		if n.Init != nil {
			r.client.atom(st, n.Init)
		}
		if n.Tag != nil {
			r.client.expr(st, n.Tag)
		}
		return r.switchBody(st, n.Body, label, func(c *ast.CaseClause) {
			for _, e := range c.List {
				r.client.expr(st, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			r.client.atom(st, n.Init)
		}
		r.client.atom(st, n.Assign)
		return r.switchBody(st, n.Body, label, func(*ast.CaseClause) {})

	case *ast.SelectStmt:
		f := &frame{label: label}
		r.frames = append(r.frames, f)
		var out flowState
		for _, cl := range n.Body.List {
			comm := cl.(*ast.CommClause)
			caseSt := st.clone()
			if comm.Comm != nil {
				r.client.atom(caseSt, comm.Comm)
			}
			out = joinStates(out, r.stmts(caseSt, comm.Body, ""))
		}
		r.frames = r.frames[:len(r.frames)-1]
		return joinStates(out, f.breaks)

	default:
		if r.client.terminal(s) {
			return nil
		}
		r.client.atom(st, s)
		return st
	}
}

// switchBody flows each case from the switch entry state and joins the
// results; a missing default contributes the entry state (no case taken).
func (r *flowRunner) switchBody(st flowState, body *ast.BlockStmt, label string, onCase func(*ast.CaseClause)) flowState {
	f := &frame{label: label}
	r.frames = append(r.frames, f)
	var out flowState
	hasDefault := false
	for _, cl := range body.List {
		c := cl.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		onCase(c)
		out = joinStates(out, r.stmts(st.clone(), c.Body, ""))
	}
	r.frames = r.frames[:len(r.frames)-1]
	if !hasDefault {
		out = joinStates(out, st)
	}
	return joinStates(out, f.breaks)
}

func labelName(b *ast.BranchStmt) string {
	if b.Label != nil {
		return b.Label.Name
	}
	return ""
}

// funcBodies yields every function body in the file — declarations and
// literals — each to be analyzed as an independent scope.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt, name string)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body, d.Name.Name)
			}
		case *ast.FuncLit:
			fn(d.Body, "func literal")
		}
		return true
	})
}
