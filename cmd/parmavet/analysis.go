package main

// The analyzer framework: a Finding is one diagnostic, an Analyzer is a
// named check run over a type-checked package, and `//parmavet:allow
// <analyzer>` comments suppress findings on their own line or the line
// directly below (so both trailing and standalone comments work).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic, addressable as file:line:col.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass carries one package through one analyzer. Prog is the shared
// whole-program call graph built once per run; analyzers that only need
// the current package may ignore it, and it is nil-safe to query (a nil
// Prog simply resolves nothing, degrading interprocedural checks to
// their lexical behavior).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program
	findings *[]Finding
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one project-specific check.
type Analyzer struct {
	Name string
	Doc  string
	// Applies limits the analyzer to certain packages; nil means all.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// analyzers returns the full suite in output order.
func analyzers() []*Analyzer {
	return []*Analyzer{spanendAnalyzer, mpierrAnalyzer, floateqAnalyzer, locksendAnalyzer, httptimeoutAnalyzer, poolsizeAnalyzer, retryboundAnalyzer, ctxspanAnalyzer, determinismAnalyzer, ctxflowAnalyzer, atomicmixAnalyzer, denseallocAnalyzer, hedgecancelAnalyzer}
}

// allowRE matches the directive form only — the comment must BEGIN with
// `//parmavet:allow` (no space, like //go: directives), so prose that
// merely mentions the directive neither suppresses nor shows up in the
// -allows inventory.
var allowRE = regexp.MustCompile(`^//parmavet:allow[ \t]+([a-z0-9_,]+)`)

// allowedLines maps analyzer name -> file -> suppressed line set, built
// from //parmavet:allow comments. A comment suppresses its own line and
// the next one.
func allowedLines(pkg *Package) map[string]map[string]map[int]bool {
	out := map[string]map[string]map[int]bool{}
	mark := func(name, file string, line int) {
		if out[name] == nil {
			out[name] = map[string]map[int]bool{}
		}
		if out[name][file] == nil {
			out[name][file] = map[int]bool{}
		}
		out[name][file][line] = true
		out[name][file][line+1] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					mark(strings.TrimSpace(name), pos.Filename, pos.Line)
				}
			}
		}
	}
	return out
}

// runAnalyzers builds the whole-program call graph once, executes every
// selected analyzer over every package, and returns the surviving
// findings in deterministic file/line/col/analyzer order.
func runAnalyzers(pkgs []*Package, selected []*Analyzer) []Finding {
	prog := buildProgram(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		allowed := allowedLines(pkg)
		for _, a := range selected {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			var raw []Finding
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Prog: prog, findings: &raw})
			for _, f := range raw {
				if allowed[a.Name][f.File][f.Line] {
					continue
				}
				findings = append(findings, f)
			}
		}
	}
	sortFindings(findings)
	return findings
}

// sortFindings orders findings by file, line, column, then analyzer, so
// both the text and -json outputs are deterministic run to run.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Shared type-resolution helpers. Types are identified by package path and
// name rather than object identity because every load re-checks from
// source.

const (
	obsPath = "parma/internal/obs"
	mpiPath = "parma/internal/mpi"
)

// namedTypeIs reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isSpanType reports whether t is obs.Span.
func isSpanType(t types.Type) bool {
	return t != nil && namedTypeIs(t, obsPath, "Span")
}

// spanSourceCall reports whether call produces an obs.Span (obs.StartSpan,
// obs.StartOn, the Recorder methods, or any helper returning one).
func spanSourceCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion, not a call
	}
	return isSpanType(info.TypeOf(call))
}

// methodOn resolves call to (receiver type name, method name) when the
// callee is a method whose receiver is a named type of pkgPath. It returns
// ok=false for plain function calls and methods of other packages.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath string) (recv, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	t := selection.Recv()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", "", false
	}
	return obj.Name(), selection.Obj().Name(), true
}

// errorResultIndexes returns the positions of `error` / `[]error` results
// of call, or nil when it has none.
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if isErrorType(t) {
			idx = append(idx, i)
			continue
		}
		if sl, okS := t.Underlying().(*types.Slice); okS && isErrorType(sl.Elem()) {
			idx = append(idx, i)
		}
	}
	return idx
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// inScope builds an Applies predicate matching any of the import paths.
func inScope(paths ...string) func(string) bool {
	set := map[string]bool{}
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath string) bool { return set[pkgPath] }
}
