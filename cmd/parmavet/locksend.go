package main

// locksend: a sync.Mutex or sync.RWMutex held across a blocking MPI call.
// The in-process transport is rendezvous-shaped (Recv blocks until a
// matching Send, collectives block on tree neighbors), so holding a lock
// that another rank's callback also takes while blocked in Comm.Send/Recv
// is a classic distributed deadlock: rank A waits in Recv holding the
// lock, rank B waits for the lock before it can Send. The analyzer tracks
// Lock/RLock → Unlock/RUnlock pairing path-sensitively inside each
// function; `defer mu.Unlock()` keeps the lock held until every exit, so
// every blocking call after it is flagged.
//
// With the call-graph engine (pass.Prog) the check is interprocedural: a
// call made under the lock to any function whose bottom-up summary says
// it may park in an MPI primitive — through any chain of resolved calls,
// across packages — is flagged with the witness chain. The original
// lexical check only saw Comm/World/Transport methods named at the call
// site itself, so wrapping the Send in a one-line helper silenced it;
// TestLocksendLexicalMiss pins that exact blind spot. A `go f()` spawn is
// not flagged even when f blocks: the spawned goroutine does not hold
// this goroutine's locks (its argument expressions, which do evaluate
// synchronously, are still scanned).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

var locksendAnalyzer = &Analyzer{
	Name: "locksend",
	Doc:  "no blocking MPI call while holding a mutex",
	Run:  runLocksend,
}

// blockingMPIMethods are the Comm/World/Transport methods that can block
// on another rank's progress.
var blockingMPIMethods = map[string]map[string]bool{
	"Comm": {
		"Send": true, "Recv": true, "SendRecv": true, "Barrier": true,
		"Bcast": true, "Gather": true, "Scatter": true, "ReduceSum": true,
		"AllreduceSum": true, "Allgather": true, "Alltoall": true,
	},
	"Transport": {"Send": true, "Recv": true},
	"World":     {"Run": true, "RunCollect": true},
}

const lockHeld = 1

func runLocksend(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt, name string) {
			c := &locksendClient{pass: pass, info: pass.Pkg.Info, lockPos: map[string]token.Pos{}}
			runFlow(c, body, flowState{})
		})
	}
}

type locksendClient struct {
	pass    *Pass
	info    *types.Info
	lockPos map[string]token.Pos
}

// mutexOp matches `x.Lock()` / `x.Unlock()` / RW variants on a
// sync.Mutex/RWMutex value and returns the lock's identity (the rendered
// receiver expression) plus the method name.
func (c *locksendClient) mutexOp(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	recv, method, isMethod := methodOn(c.info, call, "sync")
	if !isMethod || (recv != "Mutex" && recv != "RWMutex") {
		return "", "", false
	}
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return "lock:" + types.ExprString(sel.X), method, true
	}
	return "", "", false
}

// blockingCall matches a call to one of the blocking MPI methods.
func (c *locksendClient) blockingCall(call *ast.CallExpr) (string, bool) {
	recv, method, ok := methodOn(c.info, call, mpiPath)
	if !ok || !blockingMPIMethods[recv][method] {
		return "", false
	}
	return recv + "." + method, ok
}

func (c *locksendClient) atom(st flowState, s ast.Stmt) {
	if d, ok := s.(*ast.DeferStmt); ok {
		// `defer mu.Unlock()` releases only at exit: the lock stays held
		// for everything that runs before, so do not clear it. Ends of
		// other deferred calls are equally irrelevant to lock state.
		if _, _, isMutex := c.mutexOp(d.Call); isMutex {
			return
		}
		c.scan(st, d.Call)
		return
	}
	c.scan(st, s)
}

func (c *locksendClient) expr(st flowState, e ast.Expr) { c.scan(st, e) }

// scan walks a subtree in evaluation order, updating lock state and
// flagging blocking calls made while any lock is held.
func (c *locksendClient) scan(st flowState, node ast.Node) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // closures run elsewhere; analyzed separately
		case *ast.GoStmt:
			// The spawn returns immediately and the new goroutine does not
			// hold this goroutine's locks; only the synchronously evaluated
			// arguments are scanned.
			for _, arg := range v.Call.Args {
				c.scan(st, arg)
			}
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if key, method, ok := c.mutexOp(call); ok {
			switch method {
			case "Lock", "RLock":
				st[key] = lockHeld
				c.lockPos[key] = call.Pos()
			case "Unlock", "RUnlock":
				delete(st, key)
			}
			return true
		}
		if name, ok := c.blockingCall(call); ok {
			c.flagHeld(st, call, func(lock string, lockLine int) string {
				return fmt.Sprintf("%s may block while %s is held (locked at line %d); a rank waiting here deadlocks every goroutine contending for that lock", name, lock, lockLine)
			})
			return true
		}
		if fn := staticCallee(c.info, call); fn != nil {
			if chain := c.pass.Prog.BlockChain(fn); chain != "" {
				c.flagHeld(st, call, func(lock string, lockLine int) string {
					return fmt.Sprintf("%s may transitively block in an MPI call (via %s) while %s is held (locked at line %d); a rank parked down that chain deadlocks every goroutine contending for that lock", fn.Name(), chain, lock, lockLine)
				})
			}
		}
		return true
	})
}

// flagHeld reports one finding at call for every lock currently held.
func (c *locksendClient) flagHeld(st flowState, call *ast.CallExpr, msg func(lock string, lockLine int) string) {
	for key, v := range st {
		if v != lockHeld {
			continue
		}
		ks, isStr := key.(string)
		if !isStr {
			continue
		}
		lockLine := c.pass.Pkg.Fset.Position(c.lockPos[ks]).Line
		c.pass.Reportf(call.Pos(), "%s", msg(ks[len("lock:"):], lockLine))
	}
}

func (c *locksendClient) refine(st flowState, cond ast.Expr, val bool) flowState { return st }

func (c *locksendClient) exit(st flowState, pos token.Pos) {}

func (c *locksendClient) terminal(s ast.Stmt) bool {
	return isTerminalStmt(c.info, s)
}
