package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches expected-diagnostic annotations in fixture files:
//
//	expr // want "substring or regexp matched against the message"
var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one `// want` annotation: a finding must appear at
// file:line with a message matching re.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), line, m[1], err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// goldenCases lists every fixture entry: the subtest name and the
// fixture directories loaded together (multi-directory entries exercise
// cross-package resolution).
var goldenCases = []struct {
	name string
	dirs []string
}{
	{"spanend", []string{"spanend"}},
	{"mpierr", []string{"mpierr"}},
	{"floateq", []string{"floateq"}},
	{"locksend", []string{"locksend"}},
	{"httptimeout", []string{"httptimeout"}},
	{"poolsize", []string{"poolsize"}},
	{"retrybound", []string{"retrybound"}},
	{"ctxspan", []string{"ctxspan"}},
	{"determinism", []string{"determinism"}},
	{"ctxflow", []string{"ctxflow"}},
	{"atomicmix", []string{"atomicmix"}},
	{"densealloc", []string{"densealloc"}},
	{"hedgecancel", []string{"hedgecancel"}},
	{"xchain", []string{"xchain", "xchain/inner"}},
}

// TestAnalyzersGolden runs the full suite over each fixture entry and
// requires the findings to match the `// want` annotations exactly: every
// annotation hit, no unexpected findings, and annotated-but-allowed lines
// (the //parmavet:allow cases) silent. Running all analyzers over every
// fixture also asserts the analyzers do not fire on each other's fixtures.
func TestAnalyzersGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var patterns []string
			for _, d := range tc.dirs {
				patterns = append(patterns, "./"+filepath.Join("testdata", "src", d))
			}
			pkgs, err := load(patterns)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			if len(pkgs) != len(tc.dirs) {
				t.Fatalf("loaded %d packages, want %d", len(pkgs), len(tc.dirs))
			}
			findings := runAnalyzers(pkgs, analyzers())
			var wants []*expectation
			for _, d := range tc.dirs {
				wants = append(wants, parseExpectations(t, filepath.Join("testdata", "src", d))...)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want annotations", tc.name)
			}
			for _, f := range findings {
				base := filepath.Base(f.File)
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == base && w.line == f.Line && w.re.MatchString(f.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestSuppressionScope pins the //parmavet:allow contract: the comment
// silences only the named analyzer, on its own line and the next.
func TestSuppressionScope(t *testing.T) {
	pkgs, err := load([]string{"./testdata/src/floateq"})
	if err != nil {
		t.Fatal(err)
	}
	findings := runAnalyzers(pkgs, analyzers())
	for _, f := range findings {
		if strings.Contains(f.Message, "sentinel") {
			t.Errorf("allow-annotated line still reported: %s", f)
		}
	}
	// The same package run with the allow comments ignored (wrong analyzer
	// name) must keep the finding: simulate by checking the raw analyzer
	// output before suppression.
	var raw []Finding
	pass := &Pass{Analyzer: floateqAnalyzer, Pkg: pkgs[0], findings: &raw}
	floateqAnalyzer.Run(pass)
	if len(raw) <= len(findingsByAnalyzer(findings, "floateq")) {
		t.Errorf("suppression removed nothing: %d raw vs %d surviving", len(raw), len(findings))
	}
}

func findingsByAnalyzer(fs []Finding, name string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer == name {
			out = append(out, f)
		}
	}
	return out
}

// TestRunExitCodes covers the command-line contract: findings exit 1,
// usage and loader failures exit 2, -list and a justified -allows
// inventory exit 0.
func TestRunExitCodes(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("-list exited %d, want 0", got)
	}
	if got := run([]string{"-run", "nosuch"}); got != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", got)
	}
	if got := run([]string{"./testdata/src/floateq"}); got != 1 {
		t.Errorf("fixture run exited %d, want 1", got)
	}
	if got := run([]string{"-json", "./testdata/src/floateq"}); got != 1 {
		t.Errorf("fixture -json run exited %d, want 1", got)
	}
	if got := run([]string{"-allows", "./testdata/src/locksend"}); got != 0 {
		t.Errorf("-allows over justified fixture exited %d, want 0", got)
	}
}

// TestLocksendLexicalMiss pins the blind spot the call-graph engine
// closed: with a nil Program the analyzer degrades to its pre-upgrade
// lexical behavior, and the transitive fixture shapes (a Barrier wrapped
// in a one-line helper, called under a lock) go unreported. With the
// program they are all caught.
func TestLocksendLexicalMiss(t *testing.T) {
	pkgs, err := load([]string{"./testdata/src/locksend"})
	if err != nil {
		t.Fatal(err)
	}
	var lexical []Finding
	locksendAnalyzer.Run(&Pass{Analyzer: locksendAnalyzer, Pkg: pkgs[0], Prog: nil, findings: &lexical})
	if len(lexical) == 0 {
		t.Fatal("lexical mode reported nothing; the direct cases should still fire")
	}
	for _, f := range lexical {
		if strings.Contains(f.Message, "transitively") {
			t.Errorf("lexical mode reported a transitive finding it cannot see: %s", f)
		}
	}

	prog := buildProgram(pkgs)
	var full []Finding
	locksendAnalyzer.Run(&Pass{Analyzer: locksendAnalyzer, Pkg: pkgs[0], Prog: prog, findings: &full})
	transitive := 0
	for _, f := range full {
		if strings.Contains(f.Message, "transitively") {
			transitive++
		}
	}
	// hiddenDeadlock, deepDeadlock, allowedTransitive (suppression happens
	// later, in runAnalyzers) — and nothing for spawnIsClean/copyThenCall.
	if transitive != 3 {
		t.Errorf("interprocedural mode reported %d transitive findings, want 3:\n%v", transitive, full)
	}
	if len(full) <= len(lexical) {
		t.Errorf("interprocedural mode found %d findings, lexical %d; expected strictly more", len(full), len(lexical))
	}
}

// TestSuiteCleanOnSelf pins that parmavet analyzes its own source
// cleanly: the cmd/parmavet package is part of every `./...` run (and of
// make lint), so a finding here would fail CI with no way to tell it
// apart from a regression in the analyzed tree.
func TestSuiteCleanOnSelf(t *testing.T) {
	pkgs, err := load([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "parma/cmd/parmavet" {
		t.Fatalf("expected to load exactly parma/cmd/parmavet, got %d package(s)", len(pkgs))
	}
	for _, f := range runAnalyzers(pkgs, analyzers()) {
		t.Errorf("parmavet is not clean on itself: %s", f)
	}
}

// TestAllowsInventory covers collectAllows: sites are found with their
// justifications, sorted by position, and a site without a "--" clause
// is reported as unjustified.
func TestAllowsInventory(t *testing.T) {
	pkgs, err := load([]string{"./testdata/src/locksend"})
	if err != nil {
		t.Fatal(err)
	}
	sites := collectAllows(pkgs)
	if len(sites) < 2 {
		t.Fatalf("want at least 2 allow sites in the locksend fixture, got %d", len(sites))
	}
	for i, s := range sites {
		if len(s.Analyzers) == 0 || s.Analyzers[0] != "locksend" {
			t.Errorf("site %d: analyzers = %v, want [locksend]", i, s.Analyzers)
		}
		if s.Justification == "" {
			t.Errorf("site %s:%d has no justification", s.File, s.Line)
		}
		if i > 0 && (sites[i-1].File > s.File || (sites[i-1].File == s.File && sites[i-1].Line > s.Line)) {
			t.Errorf("sites out of order: %v before %v", sites[i-1], s)
		}
	}
}

// TestSortFindingsDeterministic pins the ordering contract behind the
// -json output: file, then line, then column, then analyzer, then
// message.
func TestSortFindingsDeterministic(t *testing.T) {
	want := []Finding{
		{File: "a.go", Line: 1, Col: 1, Analyzer: "mpierr", Message: "x"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "spanend", Message: "a"},
		{File: "a.go", Line: 1, Col: 1, Analyzer: "spanend", Message: "b"},
		{File: "a.go", Line: 2, Col: 9, Analyzer: "floateq", Message: "y"},
		{File: "b.go", Line: 1, Col: 2, Analyzer: "floateq", Message: "z"},
	}
	got := make([]Finding, len(want))
	for i := range want {
		got[i] = want[len(want)-1-i]
	}
	sortFindings(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestFindingString pins the diagnostic format tools and editors parse.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "spanend", File: "a/b.go", Line: 3, Col: 7, Message: "m"}
	if got, want := f.String(), "a/b.go:3:7: spanend: m"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

func ExampleFinding() {
	fmt.Println(Finding{Analyzer: "floateq", File: "x.go", Line: 1, Col: 2, Message: "== on float operands"})
	// Output: x.go:1:2: floateq: == on float operands
}
