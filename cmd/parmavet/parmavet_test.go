package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches expected-diagnostic annotations in fixture files:
//
//	expr // want "substring or regexp matched against the message"
var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one `// want` annotation: a finding must appear at
// file:line with a message matching re.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), line, m[1], err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// TestAnalyzersGolden runs the full suite over each fixture package and
// requires the findings to match the `// want` annotations exactly: every
// annotation hit, no unexpected findings, and annotated-but-allowed lines
// (the //parmavet:allow cases) silent. Running all analyzers over every
// fixture also asserts the analyzers do not fire on each other's fixtures.
func TestAnalyzersGolden(t *testing.T) {
	for _, name := range []string{"spanend", "mpierr", "floateq", "locksend", "httptimeout", "poolsize", "retrybound", "ctxspan"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkgs, err := load([]string{"./" + dir})
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			findings := runAnalyzers(pkgs, analyzers())
			wants := parseExpectations(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want annotations", dir)
			}
			for _, f := range findings {
				base := filepath.Base(f.File)
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == base && w.line == f.Line && w.re.MatchString(f.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestSuppressionScope pins the //parmavet:allow contract: the comment
// silences only the named analyzer, on its own line and the next.
func TestSuppressionScope(t *testing.T) {
	pkgs, err := load([]string{"./testdata/src/floateq"})
	if err != nil {
		t.Fatal(err)
	}
	findings := runAnalyzers(pkgs, analyzers())
	for _, f := range findings {
		if strings.Contains(f.Message, "sentinel") {
			t.Errorf("allow-annotated line still reported: %s", f)
		}
	}
	// The same package run with the allow comments ignored (wrong analyzer
	// name) must keep the finding: simulate by checking the raw analyzer
	// output before suppression.
	var raw []Finding
	pass := &Pass{Analyzer: floateqAnalyzer, Pkg: pkgs[0], findings: &raw}
	floateqAnalyzer.Run(pass)
	if len(raw) <= len(findingsByAnalyzer(findings, "floateq")) {
		t.Errorf("suppression removed nothing: %d raw vs %d surviving", len(raw), len(findings))
	}
}

func findingsByAnalyzer(fs []Finding, name string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer == name {
			out = append(out, f)
		}
	}
	return out
}

// TestRunExitCodes covers the command-line contract: findings exit 1,
// usage and loader failures exit 2, -list exits 0.
func TestRunExitCodes(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("-list exited %d, want 0", got)
	}
	if got := run([]string{"-run", "nosuch"}); got != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", got)
	}
	if got := run([]string{"./testdata/src/floateq"}); got != 1 {
		t.Errorf("fixture run exited %d, want 1", got)
	}
	if got := run([]string{"-json", "./testdata/src/floateq"}); got != 1 {
		t.Errorf("fixture -json run exited %d, want 1", got)
	}
}

// TestFindingString pins the diagnostic format tools and editors parse.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "spanend", File: "a/b.go", Line: 3, Col: 7, Message: "m"}
	if got, want := f.String(), "a/b.go:3:7: spanend: m"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

func ExampleFinding() {
	fmt.Println(Finding{Analyzer: "floateq", File: "x.go", Line: 1, Col: 2, Message: "== on float operands"})
	// Output: x.go:1:2: floateq: == on float operands
}
