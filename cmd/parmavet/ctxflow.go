package main

// ctxflow: the interprocedural generalization of ctxspan. A request's
// context.Context carries its deadline, cancellation, and trace identity;
// the serving invariants (429/503 shedding before the deadline burns,
// ErrCanceled surfacing mid-recovery, connected span trees) only hold if
// the ctx is threaded through every hop. Two shapes break the chain:
//
//   - a function holding a ctx calls a callee through its context-blind
//     variant when a context-accepting sibling exists — e.g. calling
//     World.Run when World.RunCtx is right there, or Recover when
//     RecoverContext exists. The callee then runs with no deadline and no
//     trace, and nothing downstream can tell;
//   - a function holding a ctx manufactures a fresh
//     context.Background()/TODO(): everything below that point detaches
//     from the request — cancellation never propagates and the span tree
//     shows an orphaned subtree.
//
// Sibling resolution goes through the call-graph engine's ctxSiblingOf
// (<Name>Context / <Name>Ctx in the same package, or on the same receiver
// type for methods). The canonical wrapper pattern — RunCtx itself calling
// Run with the ctx captured in a closure — is exempt: a call is not
// flagged when the enclosing function *is* the callee's ctx sibling.
// Calls into internal/obs are ctxspan's territory and skipped here.

import (
	"go/ast"
	"go/types"
	"strings"
)

var ctxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "a held context.Context must be threaded: no ctx-blind calls with a ctx sibling, no context.Background/TODO on the request path",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case "parma/internal/serve", "parma/internal/solver", "parma/internal/fleet", mpiPath:
			return true
		}
		return strings.HasSuffix(pkgPath, "parmavet/testdata/src/ctxflow") ||
			strings.Contains(pkgPath, "parmavet/testdata/src/xchain")
	},
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				checkCtxflowCall(pass, info, stack, call)
			}
			stack = append(stack, n)
			return true
		})
	}
}

func checkCtxflowCall(pass *Pass, info *types.Info, stack []ast.Node, call *ast.CallExpr) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	ctx := contextInScope(info, stack)
	if ctx == "" {
		return
	}
	if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		pass.Reportf(call.Pos(), "context.%s manufactures a fresh context while %s is held: the deadline, cancellation, and trace identity all detach here; thread the held ctx (derive with context.WithTimeout/WithCancel if a different lifetime is needed)", fn.Name(), ctx)
		return
	}
	if fn.Pkg().Path() == obsPath {
		return // span starts are ctxspan's check
	}
	sib := ctxSiblingOf(fn)
	if sib == nil {
		return
	}
	if encl := enclosingFuncObj(info, stack); encl != nil && (encl == sib || encl == fn) {
		return // the wrapper itself (RunCtx calling Run), or recursion
	}
	pass.Reportf(call.Pos(), "%s ignores %s but has the context-accepting sibling %s: the deadline and cancellation chain breaks at this hop; call %s and pass the ctx", fn.Name(), ctx, sib.Name(), sib.Name())
}

// enclosingFuncObj returns the *types.Func of the nearest enclosing
// function declaration on the ancestor stack. Func literals are climbed
// past: a closure inside RunCtx is still "inside RunCtx" for the wrapper
// exemption.
func enclosingFuncObj(info *types.Info, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		if f, ok := stack[i].(*ast.FuncDecl); ok {
			if fn, okF := info.Defs[f.Name].(*types.Func); okF {
				return fn
			}
			return nil
		}
	}
	return nil
}
