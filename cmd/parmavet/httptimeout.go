package main

// httptimeout: every `http.Server` composite literal must set
// ReadHeaderTimeout (or the stricter ReadTimeout, which bounds the header
// phase too). The zero value means the server waits forever for a client
// to finish sending headers, so one slow-loris peer can pin a connection
// — and with parmad's bounded worker pool behind the handler, pinned
// connections are exactly the resource the admission queue is supposed to
// protect. Servers built without a composite literal (field-by-field
// assignment) are out of scope; the repo builds them literally.

import (
	"go/ast"
)

var httptimeoutAnalyzer = &Analyzer{
	Name: "httptimeout",
	Doc:  "http.Server literals must set ReadHeaderTimeout (or ReadTimeout)",
	Run:  runHTTPTimeout,
}

func runHTTPTimeout(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if !namedTypeIs(info.TypeOf(lit), "net/http", "Server") {
				return true
			}
			for _, el := range lit.Elts {
				kv, isKV := el.(*ast.KeyValueExpr)
				if !isKV {
					continue
				}
				key, isIdent := kv.Key.(*ast.Ident)
				if !isIdent {
					continue
				}
				if key.Name == "ReadHeaderTimeout" || key.Name == "ReadTimeout" {
					return true
				}
			}
			pass.Reportf(lit.Pos(), "http.Server literal without ReadHeaderTimeout: header reads block forever, so one slow client pins a connection")
			return true
		})
	}
}
