package main

// httptimeout: deadlines on both sides of every HTTP hop.
//
// Inbound: every `http.Server` composite literal must set
// ReadHeaderTimeout (or the stricter ReadTimeout, which bounds the header
// phase too). The zero value means the server waits forever for a client
// to finish sending headers, so one slow-loris peer can pin a connection
// — and with parmad's bounded worker pool behind the handler, pinned
// connections are exactly the resource the admission queue is supposed to
// protect.
//
// Outbound (the fleet router made the repo a serious HTTP client, so the
// same discipline applies in reverse): an `http.Client` composite literal
// must set Timeout — the zero value waits on a wedged backend forever,
// and in a proxy that pins the caller's connection too, cascading the
// hang upstream. The package-level helpers (http.Get, http.Post,
// http.Head, http.PostForm) use the timeout-less DefaultClient and accept
// no context, so they are flagged outright. And requests must be built
// with http.NewRequestWithContext, not http.NewRequest: a client-level
// Timeout alone is one knob for all calls, while the per-attempt context
// deadline is what lets a router bound each failover attempt separately.
//
// Servers/clients built without a composite literal (field-by-field
// assignment) are out of scope; the repo builds them literally.

import (
	"go/ast"
	"go/types"
)

var httptimeoutAnalyzer = &Analyzer{
	Name: "httptimeout",
	Doc:  "http.Server/http.Client literals must set timeouts; outbound requests need per-attempt context deadlines",
	Run:  runHTTPTimeout,
}

func runHTTPTimeout(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkHTTPLiteral(pass, info, n)
			case *ast.CallExpr:
				checkHTTPCall(pass, info, n)
			}
			return true
		})
	}
}

func checkHTTPLiteral(pass *Pass, info *types.Info, lit *ast.CompositeLit) {
	var wantKeys []string
	var report string
	switch {
	case namedTypeIs(info.TypeOf(lit), "net/http", "Server"):
		wantKeys = []string{"ReadHeaderTimeout", "ReadTimeout"}
		report = "http.Server literal without ReadHeaderTimeout: header reads block forever, so one slow client pins a connection"
	case namedTypeIs(info.TypeOf(lit), "net/http", "Client"):
		wantKeys = []string{"Timeout"}
		report = "http.Client literal without Timeout: a wedged peer hangs the call (and its caller) forever"
	default:
		return
	}
	for _, el := range lit.Elts {
		kv, isKV := el.(*ast.KeyValueExpr)
		if !isKV {
			continue
		}
		key, isIdent := kv.Key.(*ast.Ident)
		if !isIdent {
			continue
		}
		for _, want := range wantKeys {
			if key.Name == want {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(), "%s", report)
}

func checkHTTPCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	name, ok := httpPkgFunc(info, call)
	if !ok {
		return
	}
	switch name {
	case "Get", "Post", "Head", "PostForm":
		pass.Reportf(call.Pos(), "http.%s uses the timeout-less DefaultClient and takes no context: build the request with NewRequestWithContext and send it on a Client with Timeout set", name)
	case "NewRequest":
		pass.Reportf(call.Pos(), "http.NewRequest carries no context: use http.NewRequestWithContext so each attempt gets its own deadline")
	}
}

// httpPkgFunc resolves call to a package-level net/http function name —
// method calls on an http.Client value resolve to false, so client.Get on
// a timeout-bearing client is not confused with http.Get.
func httpPkgFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	pkgName, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg || pkgName.Imported().Path() != "net/http" {
		return "", false
	}
	return sel.Sel.Name, true
}
