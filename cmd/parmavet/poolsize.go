package main

// poolsize: a `go` statement lexically inside a for/range loop in the
// numerics hot path (mat, solver, sparse) is a raw fan-out — one goroutine per
// item, width bounded only by the data. Kernel parallelism must instead go
// through the shared worker pool (mat.ParallelFor), which sizes itself
// from GOMAXPROCS and the Parallelism override so it composes with
// parmad's request-level workers instead of oversubscribing the machine.
// The pool's own spawn site is the one sanctioned exception, annotated
// `//parmavet:allow poolsize`. The check is lexical on purpose: a spawn
// inside a func literal that is defined inside a loop still runs per
// iteration when the literal is called there, so it is flagged too.

import (
	"go/ast"
	"strings"
)

var poolsizeAnalyzer = &Analyzer{
	Name: "poolsize",
	Doc:  "no raw goroutine fan-out loops in the numerics packages; use mat.ParallelFor",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case "parma/internal/mat", "parma/internal/solver", "parma/internal/sparse":
			return true
		}
		// Fixture packages opt in by directory name.
		return strings.Contains(pkgPath, "parmavet/testdata/")
	},
	Run: runPoolsize,
}

func runPoolsize(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// stack holds the ancestors of the node being visited; ast.Inspect
		// signals the post-order pop with a nil node.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if g, ok := n.(*ast.GoStmt); ok && inLoopBody(stack, g) {
				pass.Reportf(g.Go, "go statement inside a loop: fan out through mat.ParallelFor (shared pool, bounded width) instead, or annotate //parmavet:allow poolsize with the reason")
			}
			stack = append(stack, n)
			return true
		})
	}
}

// inLoopBody reports whether g sits inside the body of any ancestor for or
// range statement (as opposed to its init/cond/post clauses).
func inLoopBody(stack []ast.Node, g *ast.GoStmt) bool {
	for _, n := range stack {
		var body *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		default:
			continue
		}
		if body.Pos() <= g.Pos() && g.End() <= body.End() {
			return true
		}
	}
	return false
}
