package main

// atomicmix: a struct field accessed both through sync/atomic functions
// (atomic.AddInt64(&s.n, 1)) and plainly (s.n++, x := s.n) anywhere in
// the program is a data race the race detector only catches if both
// access patterns happen to collide during a test run. The typed
// atomic.Int64-style fields cannot be misused this way — the raw value is
// unexported — which is why the codebase prefers them; this check guards
// the old-style pattern, where nothing stops a "quick read" from
// bypassing the atomics.
//
// The analysis is whole-program and runs once per invocation: pass 1
// collects every field passed by address to a sync/atomic function, pass
// 2 collects every other (plain) use of exactly those fields, and the
// mixes are reported at the plain sites, each naming one atomic site as
// the counterpart. Field identity is the types.Object, so accesses from
// different packages to the same field line up.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var atomicmixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "no struct field accessed both via sync/atomic and plainly anywhere in the program",
	Run:  runAtomicmix,
}

// atomicMix is one plain access to a field that is elsewhere accessed
// atomically.
type atomicMix struct {
	field     *types.Var
	plainPos  token.Pos
	pkg       *Package // package containing the plain access
	atomicPos token.Position
}

func runAtomicmix(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, mix := range pass.Prog.atomicMixResults() {
		if mix.pkg != pass.Pkg {
			continue // reported by the pass of the package that contains it
		}
		pass.Reportf(mix.plainPos, "field %s is accessed atomically at %s:%d but plainly here: the mix is a data race — every access must go through sync/atomic, or the field should migrate to the typed atomic.Int64-style API that makes plain access impossible",
			mix.field.Name(), shortPath(mix.atomicPos.Filename), mix.atomicPos.Line)
	}
}

// shortPath trims a filename to its last two path elements for message
// brevity; full paths remain in the finding's File.
func shortPath(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) <= 2 {
		return name
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// atomicMixResults computes (once) the program-wide set of mixed-access
// fields.
func (p *Program) atomicMixResults() []atomicMix {
	if p.atomicDone {
		return p.atomicMixes
	}
	p.atomicDone = true

	// Pass 1: fields reaching sync/atomic by address, and the selector
	// nodes consumed that way (so pass 2 does not double-count them).
	atomicSites := map[*types.Var]token.Pos{}
	atomicSels := map[*ast.SelectorExpr]bool{}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, okU := ast.Unparen(arg).(*ast.UnaryExpr)
					if !okU || un.Op != token.AND {
						continue
					}
					sel, okS := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !okS {
						continue
					}
					if field := fieldVar(pkg.Info, sel); field != nil {
						if _, seen := atomicSites[field]; !seen {
							atomicSites[field] = sel.Pos()
						}
						atomicSels[sel] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicSites) == 0 {
		return nil
	}

	// Pass 2: every other use of those fields is a plain access.
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSels[sel] {
					return true
				}
				field := fieldVar(pkg.Info, sel)
				if field == nil {
					return true
				}
				atomicPos, mixed := atomicSites[field]
				if !mixed {
					return true
				}
				p.atomicMixes = append(p.atomicMixes, atomicMix{
					field:     field,
					plainPos:  sel.Pos(),
					pkg:       pkg,
					atomicPos: pkg.Fset.Position(atomicPos),
				})
				return true
			})
		}
	}
	return p.atomicMixes
}

// fieldVar resolves sel to the struct field it selects, or nil when sel
// is not a field selection.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	if v, okV := selection.Obj().(*types.Var); okV && v.IsField() {
		return v
	}
	return nil
}
