package main

// retrybound: a retry loop in the resilience-critical packages (the MPI
// runtime and the serving layer) must not be able to spin forever. A loop
// that sleeps between attempts — time.Sleep or a <-time.After receive —
// is a retry loop; it must carry a visible bound: a three-clause for with
// a counter, a range over a finite attempt set, a deadline check
// (time.Now / time.Since / time.Until), or a context check (Done / Err /
// Deadline). Unbounded retries are exactly how a transient fault turns
// into a hung rank or a wedged worker: the reliable transport's whole
// design is bounded attempts escalating to a typed ErrRankDead, and this
// check keeps new code on that path. Deliberately unbounded loops (e.g. a
// supervisor that must outlive any fault) opt out with
// `//parmavet:allow retrybound` and a reason.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var retryboundAnalyzer = &Analyzer{
	Name: "retrybound",
	Doc:  "retry loops in internal/mpi and internal/serve must bound attempts or check a deadline/context",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case mpiPath, "parma/internal/serve":
			return true
		}
		// Fixture packages opt in by directory name.
		return strings.Contains(pkgPath, "parmavet/testdata/")
	},
	Run: runRetrybound,
}

func runRetrybound(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Attribute each backoff call to its innermost enclosing loop, then
		// report the loops that sleep without any visible bound. The walk is
		// lexical (func literals inside a loop body count): a retry closure
		// defined in the loop still runs per iteration.
		var stack []ast.Node
		sleeps := map[ast.Node]bool{} // loop node -> contains a backoff
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if isBackoff(info, n) {
				if l := innermostLoop(stack); l != nil {
					sleeps[l] = true
				}
			}
			stack = append(stack, n)
			return true
		})
		for loop := range sleeps {
			if loopBounded(info, loop) {
				continue
			}
			pass.Reportf(loop.Pos(), "unbounded retry loop: it sleeps between attempts but never bounds them; add a counter, a deadline (time.Now/Since/Until), or a context check, or annotate //parmavet:allow retrybound with the reason")
		}
	}
}

// isBackoff reports whether n is a between-attempts pause: a time.Sleep
// call or a receive from time.After.
func isBackoff(info *types.Info, n ast.Node) bool {
	switch e := n.(type) {
	case *ast.CallExpr:
		return timeFuncCall(info, e, "Sleep")
	case *ast.UnaryExpr:
		if e.Op != token.ARROW {
			return false
		}
		call, ok := ast.Unparen(e.X).(*ast.CallExpr)
		return ok && timeFuncCall(info, call, "After", "Tick")
	}
	return false
}

// innermostLoop returns the deepest for/range statement on the ancestor
// stack, or nil.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		}
	}
	return nil
}

// loopBounded reports whether the loop carries a visible attempt bound.
func loopBounded(info *types.Info, loop ast.Node) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		// Ranging over a finite attempt set (slice, int, map...) is the
		// bound. Ranging over a channel terminates when the sender closes
		// it, which is an external liveness decision we accept.
		return true
	case *ast.ForStmt:
		// The canonical counter: for i := 0; i < max; i++.
		if l.Cond != nil && l.Post != nil {
			return true
		}
		if l.Cond != nil && hasDeadlineCheck(info, l.Cond) {
			return true
		}
		return hasDeadlineCheck(info, l.Body)
	}
	return false
}

// hasDeadlineCheck reports whether n contains a wall-clock deadline probe
// (time.Now / time.Since / time.Until) or a context liveness probe
// (Done / Err / Deadline on a context.Context).
func hasDeadlineCheck(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if timeFuncCall(info, call, "Now", "Since", "Until") {
			found = true
			return false
		}
		if recv, method, okM := methodOn(info, call, "context"); okM && recv == "Context" {
			switch method {
			case "Done", "Err", "Deadline":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// timeFuncCall reports whether call invokes one of the named package-level
// functions of package time.
func timeFuncCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}
