package main

// spanend: the result of obs.StartSpan / obs.StartOn (or of any helper
// returning an obs.Span) must reach a .End call on every path out of the
// function that holds it, mirroring the stdlib lostcancel vet check. A
// span that is never ended is never recorded, so the trace silently loses
// the region — the §V timing evidence corrupts with no error anywhere.
//
// The analyzer understands the codebase's idioms:
//   - `defer sp.End()` and a deferred closure that calls sp.End();
//   - the inert-span guard `if sp.Active() { ... sp.End() ... }`: a span
//     that is not Active can never be recorded, so the else path is clean;
//   - a span passed to another function, returned, captured by a non-defer
//     closure, or otherwise aliased is treated as handed off (escaped).

import (
	"go/ast"
	"go/token"
	"go/types"
)

var spanendAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans must be ended on every path",
	Run:  runSpanend,
}

// Span lattice values; the join takes the maximum, so "may still be open"
// wins at merge points.
const (
	spanClosed = 1
	spanOpen   = 2
)

func runSpanend(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt, name string) {
			c := &spanendClient{
				pass:     pass,
				info:     pass.Pkg.Info,
				funcName: name,
				startPos: map[*types.Var]token.Pos{},
				reported: map[token.Pos]bool{},
			}
			runFlow(c, body, flowState{})
		})
	}
}

type spanendClient struct {
	pass     *Pass
	info     *types.Info
	funcName string
	startPos map[*types.Var]token.Pos
	reported map[token.Pos]bool
}

func (c *spanendClient) report(start token.Pos, exit token.Pos, how string) {
	if c.reported[start] {
		return
	}
	c.reported[start] = true
	exitLine := c.pass.Pkg.Fset.Position(exit).Line
	c.pass.Reportf(start, "span started here is not ended on every path in %s (%s at line %d); call End (or defer it) before the function can exit", c.funcName, how, exitLine)
}

// spanVar resolves e to the local span variable it names, if any.
func (c *spanendClient) spanVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.info.Uses[id]
	if obj == nil {
		obj = c.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !isSpanType(v.Type()) {
		return nil
	}
	return v
}

// spanMethodCall matches `x.End(...)` / `x.Active()` on a tracked variable.
func (c *spanendClient) spanMethodCall(call *ast.CallExpr) (v *types.Var, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	recv, method, ok := methodOn(c.info, call, obsPath)
	if !ok || recv != "Span" {
		return nil, ""
	}
	return c.spanVar(sel.X), method
}

func (c *spanendClient) atom(st flowState, s ast.Stmt) {
	switch n := s.(type) {
	case *ast.AssignStmt:
		c.assign(st, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.declare(st, vs)
				}
			}
		}
	case *ast.ExprStmt:
		c.expr(st, n.X)
	case *ast.DeferStmt:
		c.deferred(st, n.Call)
	case *ast.GoStmt:
		// A goroutine may End the span after this function returns; treat
		// any captured span as handed off.
		c.scanEffects(st, n.Call, nil)
	default:
		c.scanEffects(st, s, nil)
	}
}

// declare handles `var sp = start()` / `var sp obs.Span`.
func (c *spanendClient) declare(st flowState, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		v, _ := c.info.Defs[name].(*types.Var)
		if v == nil || !isSpanType(v.Type()) {
			if i < len(vs.Values) {
				c.expr(st, vs.Values[i])
			}
			continue
		}
		if i < len(vs.Values) {
			c.open(st, v, vs.Values[i], name.Pos())
		}
	}
}

// assign handles `sp := start()`, `sp = start()`, `_ = start()` and every
// other assignment shape, opening spans and catching leaks by overwrite.
func (c *spanendClient) assign(st flowState, n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			lhs, rhs := n.Lhs[i], n.Rhs[i]
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if isCall && spanSourceCall(c.info, call) {
				c.scanEffects(st, call, nil) // arguments may reference other spans
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if id.Name == "_" {
						c.pass.Reportf(call.Pos(), "result of span start is discarded; the span can never be ended")
						continue
					}
					if v := c.spanVar(id); v != nil {
						c.open(st, v, call, call.Pos())
						continue
					}
				}
				// Span stored into a field, map, or similar: handed off.
				c.scanEffects(st, lhs, nil)
				continue
			}
			c.scanEffects(st, rhs, nil)
			if v := c.spanVar(lhs); v != nil {
				// Overwriting an open span loses it; the new value is not a
				// start call (handled above), so stop tracking.
				if st[v] == spanOpen {
					c.report(c.startPos[v], n.Pos(), "overwritten while still open")
				}
				st[v] = spanClosed
				continue
			}
			c.scanEffects(st, lhs, nil)
		}
		return
	}
	// Multi-value form `a, b := f()`: no single-result span source applies.
	for _, rhs := range n.Rhs {
		c.scanEffects(st, rhs, nil)
	}
	for _, lhs := range n.Lhs {
		c.scanEffects(st, lhs, nil)
	}
}

func (c *spanendClient) open(st flowState, v *types.Var, rhs ast.Expr, pos token.Pos) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !spanSourceCall(c.info, call) {
		c.scanEffects(st, rhs, nil)
		st[v] = spanClosed // zero value or copy: nothing to end
		return
	}
	if st[v] == spanOpen {
		c.report(c.startPos[v], pos, "overwritten while still open")
	}
	st[v] = spanOpen
	c.startPos[v] = pos
}

// expr applies the effects of evaluating e: End closes, Active is neutral,
// any other reference to a tracked span hands it off.
func (c *spanendClient) expr(st flowState, e ast.Expr) {
	c.scanEffects(st, e, nil)
}

// scanEffects walks a subtree, closing spans at End calls, ignoring Active
// guards, and treating every other reference to a tracked span as a
// hand-off. Deferred closures are scanned by deferred(), not here.
func (c *spanendClient) scanEffects(st flowState, node ast.Node, skip map[ast.Node]bool) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if v, method := c.spanMethodCall(x); v != nil {
				switch method {
				case "End":
					st[v] = spanClosed
					for _, arg := range x.Args {
						c.scanEffects(st, arg, skip)
					}
					return false
				case "Active":
					return false
				}
			}
		case *ast.Ident:
			if v := c.spanVar(x); v != nil {
				// Referenced somewhere other than End/Active: returned,
				// passed along, aliased, or captured. Ownership moved.
				st[v] = spanClosed
			}
		}
		return true
	})
}

// deferred handles `defer sp.End()` and `defer func() { ... sp.End() ... }()`:
// from this statement on, every exit runs the deferred End.
func (c *spanendClient) deferred(st flowState, call *ast.CallExpr) {
	if v, method := c.spanMethodCall(call); v != nil && method == "End" {
		st[v] = spanClosed
		for _, arg := range call.Args {
			c.scanEffects(st, arg, nil)
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Ends inside the deferred closure cover every later exit; other
		// references inside it are reads at exit time, not hand-offs.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if v, method := c.spanMethodCall(inner); v != nil && method == "End" {
					st[v] = spanClosed
				}
			}
			return true
		})
		return
	}
	c.scanEffects(st, call, nil)
}

// refine understands the inert-span guard: on the false branch of
// sp.Active() the span can never record, so it needs no End.
func (c *spanendClient) refine(st flowState, cond ast.Expr, val bool) flowState {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return c.refine(st, x.X, !val)
		}
	case *ast.BinaryExpr:
		if (x.Op == token.LAND && val) || (x.Op == token.LOR && !val) {
			st = c.refine(st, x.X, val)
			st = c.refine(st, x.Y, val)
		}
	case *ast.CallExpr:
		if v, method := c.spanMethodCall(x); v != nil && method == "Active" && !val {
			st[v] = spanClosed
		}
	}
	return st
}

func (c *spanendClient) exit(st flowState, pos token.Pos) {
	for k, v := range st {
		if v != spanOpen {
			continue
		}
		if sv, ok := k.(*types.Var); ok {
			c.report(c.startPos[sv], pos, "exit")
		}
	}
}

func (c *spanendClient) terminal(s ast.Stmt) bool {
	return isTerminalStmt(c.info, s)
}

// isTerminalStmt reports whether s never returns: panic(...) or os.Exit.
func isTerminalStmt(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}
