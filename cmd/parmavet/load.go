package main

// Package loading without golang.org/x/tools: the dependency graph comes
// from `go list -json -deps` (which emits dependencies before dependents),
// every package is parsed with go/parser, and the whole graph is
// type-checked bottom-up with go/types. Dependency packages are checked
// with IgnoreFuncBodies for speed; the packages named on the command line
// get full bodies plus the types.Info the analyzers need.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output parmavet consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Err string
	}
}

// Package is one fully type-checked target package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// goList runs `go list -e -json -deps patterns...` and decodes the JSON
// stream. CGO_ENABLED=0 keeps the file sets pure Go so the source
// type-checker sees complete packages.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e",
		"-json=ImportPath,Dir,GoFiles,Imports,Standard,DepOnly,Error",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// loader type-checks a `go list -deps` graph in order, caching results so
// each package is checked once.
type loader struct {
	fset    *token.FileSet
	checked map[string]*types.Package
}

// Import implements types.Importer over the already-checked cache. Stdlib
// vendored imports ("golang.org/x/...") are listed under a "vendor/"
// prefix, so retry with it before giving up.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if p, ok := l.checked["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q has not been type-checked yet", path)
}

func (l *loader) parseFiles(p *listedPackage, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// load lists patterns, type-checks the full dependency graph, and returns
// the target (non-DepOnly) packages with complete type information.
func load(patterns []string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	l := &loader{fset: token.NewFileSet(), checked: map[string]*types.Package{}}
	var targets []*Package
	for _, p := range listed {
		if p.ImportPath == "unsafe" {
			continue
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		mode := parser.SkipObjectResolution
		if !p.DepOnly {
			mode |= parser.ParseComments
		}
		files, err := l.parseFiles(p, mode)
		if err != nil {
			if p.DepOnly {
				continue // a broken dependency only matters if a target needs it
			}
			return nil, err
		}
		var depErrs []error
		cfg := &types.Config{
			Importer:         l,
			IgnoreFuncBodies: p.DepOnly,
			Error:            func(err error) { depErrs = append(depErrs, err) },
		}
		var info *types.Info
		if !p.DepOnly {
			info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
			}
		}
		tpkg, err := cfg.Check(p.ImportPath, l.fset, files, info)
		if !p.DepOnly && len(depErrs) > 0 {
			var msgs []string
			for _, e := range depErrs {
				msgs = append(msgs, e.Error())
			}
			return nil, fmt.Errorf("type errors in %s:\n  %s", p.ImportPath, strings.Join(msgs, "\n  "))
		}
		if tpkg == nil && err != nil {
			if p.DepOnly {
				continue
			}
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		l.checked[p.ImportPath] = tpkg
		if !p.DepOnly {
			targets = append(targets, &Package{
				Path:  p.ImportPath,
				Fset:  l.fset,
				Files: files,
				Types: tpkg,
				Info:  info,
			})
		}
	}
	return targets, nil
}
