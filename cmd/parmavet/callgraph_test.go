package main

import (
	"testing"
)

const (
	xchainPath = "parma/cmd/parmavet/testdata/src/xchain"
	innerPath  = "parma/cmd/parmavet/testdata/src/xchain/inner"
)

func loadProgram(t *testing.T, patterns ...string) *Program {
	t.Helper()
	pkgs, err := load(patterns)
	if err != nil {
		t.Fatal(err)
	}
	return buildProgram(pkgs)
}

// hasEdge reports whether from has a call edge to an identically keyed
// callee in calleePkg.
func hasEdge(prog *Program, from *FuncNode, calleePkg, calleeKey string) bool {
	for _, e := range from.Edges {
		if e.Callee.Pkg() != nil && e.Callee.Pkg().Path() == calleePkg && funcKey(e.Callee) == calleeKey {
			return true
		}
	}
	return false
}

// TestCallGraphEdges covers the three edge kinds the engine resolves:
// direct same-package calls, method calls, and cross-package calls.
func TestCallGraphEdges(t *testing.T) {
	prog := loadProgram(t, "./testdata/src/xchain", "./testdata/src/xchain/inner", "./testdata/src/ctxflow")

	// Cross-package direct call: xchain.relay → inner.Exchange.
	relay := prog.FuncNamed(xchainPath, "relay")
	if relay == nil {
		t.Fatal("no node for xchain.relay")
	}
	if !hasEdge(prog, relay, innerPath, "Exchange") {
		t.Errorf("relay is missing its cross-package edge to inner.Exchange; edges: %v", relay.Edges)
	}

	// Same-package direct call: xchain.twoHopDeadlock → xchain.relay.
	twoHop := prog.FuncNamed(xchainPath, "twoHopDeadlock")
	if twoHop == nil {
		t.Fatal("no node for xchain.twoHopDeadlock")
	}
	if !hasEdge(prog, twoHop, xchainPath, "relay") {
		t.Errorf("twoHopDeadlock is missing its direct edge to relay; edges: %v", twoHop.Edges)
	}

	// Method call: ctxflow.dropsCtxMethod → (*runner).Run.
	ctxflowPath := "parma/cmd/parmavet/testdata/src/ctxflow"
	dropsMethod := prog.FuncNamed(ctxflowPath, "dropsCtxMethod")
	if dropsMethod == nil {
		t.Fatal("no node for ctxflow.dropsCtxMethod")
	}
	if !hasEdge(prog, dropsMethod, ctxflowPath, "runner.Run") {
		t.Errorf("dropsCtxMethod is missing its method edge to runner.Run; edges: %v", dropsMethod.Edges)
	}

	// Edges into dependency packages resolve even without bodies:
	// inner.Exchange → mpi.Comm.Barrier.
	exchange := prog.FuncNamed(innerPath, "Exchange")
	if exchange == nil {
		t.Fatal("no node for inner.Exchange")
	}
	if !hasEdge(prog, exchange, mpiPath, "Comm.Barrier") {
		t.Errorf("Exchange is missing its edge to Comm.Barrier; edges: %v", exchange.Edges)
	}
}

// TestBlocksSummaryPropagation follows the blocks-on-MPI summary through
// two hops and across a package boundary, and checks the rendered
// witness chain diagnostics use.
func TestBlocksSummaryPropagation(t *testing.T) {
	prog := loadProgram(t, "./testdata/src/xchain", "./testdata/src/xchain/inner")

	exchange := prog.FuncNamed(innerPath, "Exchange")
	if exchange == nil || exchange.Blocks == nil {
		t.Fatal("inner.Exchange should carry a direct blocks-on-MPI summary")
	}
	if got := prog.BlockChain(exchange.Obj); got != "Comm.Barrier" {
		t.Errorf("Exchange chain = %q, want %q", got, "Comm.Barrier")
	}

	relay := prog.FuncNamed(xchainPath, "relay")
	if relay == nil || relay.Blocks == nil {
		t.Fatal("xchain.relay should inherit the summary across the package boundary")
	}
	if got := prog.BlockChain(relay.Obj); got != "Exchange → Comm.Barrier" {
		t.Errorf("relay chain = %q, want %q", got, "Exchange → Comm.Barrier")
	}

	twoHop := prog.FuncNamed(xchainPath, "twoHopDeadlock")
	if twoHop == nil || twoHop.Blocks == nil {
		t.Fatal("twoHopDeadlock should inherit the summary through two hops")
	}
	if got := prog.BlockChain(twoHop.Obj); got != "relay → Exchange → Comm.Barrier" {
		t.Errorf("twoHopDeadlock chain = %q, want %q", got, "relay → Exchange → Comm.Barrier")
	}

	// The goroutine spawn in spawnIsClean must NOT leak a summary edge —
	// but locksend's fixture lives in another package; the equivalent
	// negative case here: unlockedExchange blocks (it calls Exchange
	// synchronously), while threaded does not block at all.
	if n := prog.FuncNamed(xchainPath, "unlockedExchange"); n == nil || n.Blocks == nil {
		t.Error("unlockedExchange should carry the blocks summary (it calls Exchange synchronously)")
	}
	if n := prog.FuncNamed(xchainPath, "threaded"); n == nil || n.Blocks != nil {
		t.Error("threaded should not carry a blocks summary")
	}
}

// TestCtxSummaries covers the context summaries: AcceptsCtx from the
// signature and CtxSibling resolution across the Fetch/FetchContext pair.
func TestCtxSummaries(t *testing.T) {
	prog := loadProgram(t, "./testdata/src/xchain", "./testdata/src/xchain/inner")

	fetch := prog.FuncNamed(innerPath, "Fetch")
	fetchCtx := prog.FuncNamed(innerPath, "FetchContext")
	if fetch == nil || fetchCtx == nil {
		t.Fatal("missing nodes for Fetch/FetchContext")
	}
	if fetch.AcceptsCtx {
		t.Error("Fetch should not report AcceptsCtx")
	}
	if !fetchCtx.AcceptsCtx {
		t.Error("FetchContext should report AcceptsCtx")
	}
	if fetch.CtxSibling != fetchCtx.Obj {
		t.Errorf("Fetch.CtxSibling = %v, want FetchContext", fetch.CtxSibling)
	}
	if fetchCtx.CtxSibling != nil {
		t.Errorf("FetchContext.CtxSibling = %v, want nil (it already accepts a ctx)", fetchCtx.CtxSibling)
	}
}

// TestOrderSensitiveSummary pins the order-sensitive map-iteration
// summary over the determinism fixture: the unsorted collector is
// order-sensitive, the collect-then-sort shape is not.
func TestOrderSensitiveSummary(t *testing.T) {
	prog := loadProgram(t, "./testdata/src/determinism")
	detPath := "parma/cmd/parmavet/testdata/src/determinism"

	if n := prog.FuncNamed(detPath, "sumWeights"); n == nil || !n.OrderSensitive {
		t.Error("sumWeights should be order-sensitive (FP accumulation in map range)")
	}
	if n := prog.FuncNamed(detPath, "collectIDs"); n == nil || !n.OrderSensitive {
		t.Error("collectIDs should be order-sensitive (unsorted append in map range)")
	}
	if n := prog.FuncNamed(detPath, "sortedIDs"); n == nil || n.OrderSensitive {
		t.Error("sortedIDs should not be order-sensitive (sorted after collection)")
	}
	if n := prog.FuncNamed(detPath, "countTrue"); n == nil || n.OrderSensitive {
		t.Error("countTrue should not be order-sensitive (integer accumulation commutes)")
	}
}
