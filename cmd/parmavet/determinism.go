package main

// determinism: the bit-identical claims (PR 4's any-pool-width kernel
// equivalence, PR 5's XOR-of-checksums self-healing formation proof) only
// hold if the numerics and formation paths are pure functions of their
// inputs. Go randomizes map iteration order per run, so three shapes
// silently break them:
//
//   - floating-point accumulation inside `range` over a map: FP addition
//     is not associative, so the sum depends on visit order;
//   - append to an outer slice inside `range` over a map: the element
//     order — and anything derived from it (wire messages, checksums) —
//     differs run to run, unless the slice is sorted afterwards;
//   - MPI traffic issued inside `range` over a map: the message order
//     seen by peers is random, including calls that only reach the wire
//     transitively (resolved through the call graph).
//
// Two more nondeterminism sources are flagged in the same packages:
// draws from the shared math/rand global source (unseeded and
// goroutine-interleaved; deterministic code must thread a seeded
// *rand.Rand), and wall-clock timestamps converted to values
// (time.Now().Unix*/Nanosecond) — time used for deadlines and durations
// (Since/Sub/Before) is fine, time used as data is not.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "no map-iteration-ordered results, unseeded math/rand, or wall-clock values in the deterministic packages",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case "parma/internal/mat", "parma/internal/solver", "parma/internal/kirchhoff", "parma/internal/sparse", "parma/internal/fleet", mpiPath:
			return true
		}
		return strings.HasSuffix(pkgPath, "parmavet/testdata/src/determinism")
	},
	Run: runDeterminism,
}

// orderSite is one order-sensitive use of map iteration inside a body.
type orderSite struct {
	pos token.Pos
	msg string
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(body *ast.BlockStmt, name string) {
			for _, site := range mapRangeSites(info, body, pass.Prog) {
				pass.Reportf(site.pos, "%s", site.msg)
			}
		})
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, bad := globalRandDraw(info, call); bad {
				pass.Reportf(call.Pos(), "rand.%s draws from the shared global source: the sequence depends on every other draw in the process, so results are not a function of the inputs; thread a seeded *rand.Rand instead", name)
			}
			if method, bad := wallClockValue(info, call); bad {
				pass.Reportf(call.Pos(), "time.Now().%s turns the wall clock into a value: two runs of the same inputs differ; clocks are for deadlines and durations (Since/Sub/Before), not data", method)
			}
			return true
		})
	}
}

// mapRangeSites finds the order-sensitive map-iteration shapes in body.
// prog may be nil (the call-graph builder uses the nil form to compute
// the local OrderSensitive summary); with a program, calls that
// transitively reach a blocking MPI primitive are resolved too.
// Func-literal subtrees are skipped — they are independent scopes.
func mapRangeSites(info *types.Info, body *ast.BlockStmt, prog *Program) []orderSite {
	var sites []orderSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		sites = append(sites, mapRangeBody(info, body, rng, prog)...)
		return true
	})
	return sites
}

// mapRangeBody inspects one map-range body for order-sensitive effects.
// funcBody is the enclosing function body, needed for the sorted-after
// exemption.
func mapRangeBody(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt, prog *Program) []orderSite {
	var sites []orderSite
	outside := func(obj types.Object) bool {
		return obj != nil && !(obj.Pos() >= rng.Pos() && obj.Pos() <= rng.Body.End())
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
				return true
			}
			lhs, rhs := v.Lhs[0], v.Rhs[0]
			obj := rootIdentObj(info, lhs)
			if !outside(obj) {
				return true
			}
			if fpAccumulation(info, v, obj) {
				sites = append(sites, orderSite{pos: v.Pos(),
					msg: "floating-point accumulation into " + types.ExprString(lhs) + " ordered by map iteration: FP addition is not associative, so the result differs run to run and breaks the bit-identical checksum proofs; iterate sorted keys instead"})
				return true
			}
			if v.Tok == token.ASSIGN && isAppendOf(info, rhs, obj) &&
				!sortedAfter(info, funcBody, obj, rng.End()) {
				sites = append(sites, orderSite{pos: v.Pos(),
					msg: "append to " + types.ExprString(lhs) + " ordered by map iteration: the element order is random per run, so anything derived from it (wire messages, checksums) is nondeterministic; sort it afterwards or iterate sorted keys"})
			}
		case *ast.CallExpr:
			fn := staticCallee(info, v)
			if fn == nil {
				return true
			}
			if name, ok := seedBlocking(fn); ok {
				sites = append(sites, orderSite{pos: v.Pos(),
					msg: "MPI traffic (" + name + ") issued in map-iteration order: peers observe a different message order every run; iterate sorted keys"})
			} else if chain := prog.BlockChain(fn); chain != "" {
				sites = append(sites, orderSite{pos: v.Pos(),
					msg: "call to " + fn.Name() + " issues MPI traffic (via " + chain + ") in map-iteration order: peers observe a different message order every run; iterate sorted keys"})
			}
		}
		return true
	})
	return sites
}

// fpAccumulation matches `x op= v` and `x = x op v` where x has floating
// point (or complex) type and obj is x's root object.
func fpAccumulation(info *types.Info, assign *ast.AssignStmt, obj types.Object) bool {
	lhs := assign.Lhs[0]
	t := info.TypeOf(lhs)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsFloat|types.IsComplex) == 0 {
		return false
	}
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		bin, okB := ast.Unparen(assign.Rhs[0]).(*ast.BinaryExpr)
		if !okB {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return rootIdentObj(info, bin.X) == obj || rootIdentObj(info, bin.Y) == obj
		}
	}
	return false
}

// isAppendOf matches `append(x, ...)` where x's root object is obj.
func isAppendOf(info *types.Info, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, okI := ast.Unparen(call.Fun).(*ast.Ident)
	if !okI || id.Name != "append" {
		return false
	}
	if b, okB := info.Uses[id].(*types.Builtin); !okB || b.Name() != "append" {
		return false
	}
	return rootIdentObj(info, call.Args[0]) == obj
}

// sortedAfter reports whether obj is passed (anywhere in the argument
// tree) to a sort/slices function after pos in funcBody — the sanctioned
// way to make a map-collected slice deterministic.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, okI := m.(*ast.Ident); okI && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// rootIdentObj resolves the base identifier of e (unwrapping selectors,
// indexes, and parens) to its object: `s.sum` → s, `out` → out.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// globalRandDraw matches package-level calls into math/rand (v1 or v2)
// other than the explicit-source constructors: those share the global
// source, whose sequence depends on every other draw in the process.
func globalRandDraw(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false // methods on an explicit *rand.Rand are fine
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return "", false
	}
	return fn.Name(), true
}

// wallClockValue matches time.Now().Unix* / Nanosecond — a timestamp
// flowing into the value domain. (A Now stored in a variable first is not
// tracked; the check is lexical by design.)
func wallClockValue(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Unix", "UnixNano", "UnixMilli", "UnixMicro", "Nanosecond":
	default:
		return "", false
	}
	inner, okI := ast.Unparen(sel.X).(*ast.CallExpr)
	if !okI {
		return "", false
	}
	fn := staticCallee(info, inner)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Now" {
		return "", false
	}
	return sel.Sel.Name, true
}
