package main

// mpierr: error results of the MPI layer may not be discarded. Every
// Comm.Send/Recv, every collective, and World.SetSpeeds/Run feeds the LogP
// cost accounting; a dropped error means a rank silently skipped traffic
// it was supposed to be charged for, and the simulated timings drift from
// the protocol that actually ran. Flagged shapes: a bare call statement,
// `go`/`defer` of such a call, and an assignment that lands the error (or
// []error) result in the blank identifier.

import (
	"go/ast"
)

var mpierrAnalyzer = &Analyzer{
	Name: "mpierr",
	Doc:  "errors from mpi.Comm, mpi.World, and mpi.Transport calls must be checked",
	Run:  runMpierr,
}

// mpiErrorCall matches a call to a method on the mpi package's Comm,
// World, Coordinator, or Transport whose results include error or []error,
// returning the result positions that must not be discarded.
func mpiErrorCall(pass *Pass, call *ast.CallExpr) []int {
	recv, _, ok := methodOn(pass.Pkg.Info, call, mpiPath)
	if !ok {
		return nil
	}
	switch recv {
	case "Comm", "World", "Coordinator", "Transport":
		return errorResultIndexes(pass.Pkg.Info, call)
	}
	return nil
}

func runMpierr(pass *Pass) {
	describe := func(call *ast.CallExpr) string {
		recv, method, ok := methodOn(pass.Pkg.Info, call, mpiPath)
		if !ok {
			return "MPI call"
		}
		return recv + "." + method
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					if idx := mpiErrorCall(pass, call); idx != nil {
						pass.Reportf(call.Pos(), "result of %s contains an error that is discarded; MPI failures must be checked or the cost accounting silently drifts", describe(call))
					}
					return true
				}
			case *ast.GoStmt:
				if idx := mpiErrorCall(pass, s.Call); idx != nil {
					pass.Reportf(s.Call.Pos(), "error from %s is unreachable in a go statement; run it synchronously or collect the error", describe(s.Call))
				}
			case *ast.DeferStmt:
				if idx := mpiErrorCall(pass, s.Call); idx != nil {
					pass.Reportf(s.Call.Pos(), "error from %s is discarded by defer; wrap it in a closure that checks the error", describe(s.Call))
				}
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				idx := mpiErrorCall(pass, call)
				if idx == nil {
					return true
				}
				for _, i := range idx {
					if i >= len(s.Lhs) {
						continue
					}
					if id, isIdent := ast.Unparen(s.Lhs[i]).(*ast.Ident); isIdent && id.Name == "_" {
						pass.Reportf(id.Pos(), "error result of %s is assigned to the blank identifier; MPI failures must be checked", describe(call))
					}
				}
			}
			return true
		})
	}
}
