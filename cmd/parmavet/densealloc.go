package main

// densealloc: (*sparse.CSR).Dense() materializes the full m×n matrix —
// O(rows·cols) memory for a structure whose whole point is storing O(nnz).
// It exists for tests and small-problem comparisons; on the serving path
// (serve, solver, circuit) a densification silently turns the sparse
// large-n recovery back into the dense-memory regime it was built to
// escape, and at n=128 that is a quarter-million-entry allocation per
// call. Those packages must stay on the CSR kernels (MulVecTo, NormalInto,
// Gather); a deliberate small-problem densification needs an explicit
// `//parmavet:allow densealloc` with the size bound that justifies it.

import (
	"go/ast"
	"go/types"
	"strings"
)

var denseallocAnalyzer = &Analyzer{
	Name: "densealloc",
	Doc:  "no CSR.Dense() densification in the serve-path packages; stay on the sparse kernels",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case "parma/internal/serve", "parma/internal/solver",
			"parma/internal/circuit":
			return true
		}
		// Fixture packages opt in by directory name.
		return strings.Contains(pkgPath, "parmavet/testdata/")
	},
	Run: runDensealloc,
}

// isCSR reports whether t is sparse.CSR or a pointer to it. Matching on
// the named type keeps the check robust to aliasing through locals and
// struct fields; the name alone is specific enough that fixtures can
// define their own CSR stand-in.
func isCSR(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "CSR"
}

func runDensealloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Dense" {
				return true
			}
			if !isCSR(info.TypeOf(sel.X)) {
				return true
			}
			pass.Reportf(sel.Sel.NamePos, "CSR.Dense() on the serve path materializes O(rows*cols) memory: use the sparse kernels (MulVecTo, NormalInto) or annotate //parmavet:allow densealloc with the size bound")
			return true
		})
	}
}
