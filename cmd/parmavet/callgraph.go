package main

// The whole-program call-graph engine. The per-function flow engine in
// flow.go sees one body at a time, so an invariant like "no blocking MPI
// call under a lock" was only enforced where the Comm call was lexically
// visible. This file builds the missing global view: every function
// declared in the loaded (target) packages becomes a node, every call
// site that resolves statically — direct calls, method calls, and calls
// into other target packages — becomes an edge, and per-function
// summaries are propagated bottom-up over the graph until a fixpoint.
//
// Resolution is deliberately conservative and documented as such:
//
//   - plain calls (`f()`) and package-qualified calls (`pkg.F()`) resolve
//     through types.Info.Uses;
//   - method calls (`x.M()`) resolve through types.Info.Selections to the
//     concrete method when the receiver is a named (non-interface) type;
//   - interface method calls resolve to the interface method object,
//     which has no body: they contribute a summary only when the
//     interface itself is a seeded MPI primitive (mpi.Transport);
//   - function values, func-literal calls, and method values are not
//     resolved — a closure is analyzed as its own scope by the flow
//     engine, never folded into its enclosing function's summary;
//   - `go f()` does not add an edge: the spawn returns immediately, so
//     the caller itself does not block in f. Deferred calls do run
//     before the caller returns and keep their edge.
//
// Summaries computed per node:
//
//	Blocks         the function may park in a blocking MPI primitive
//	               (Comm.Send/Recv/collectives, Transport.Send/Recv,
//	               World.Run/RunCtx/RunCollect), directly or through any
//	               chain of resolved calls; carries a witness chain for
//	               diagnostics.
//	AcceptsCtx     the signature takes a context.Context.
//	CtxSibling     a same-package (or same-receiver) variant named
//	               <Name>Context or <Name>Ctx that does accept a ctx.
//	OrderSensitive the body iterates a map in an order-sensitive way
//	               (the shapes the determinism analyzer flags).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CallEdge is one statically resolved call site.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

// BlockWitness records why a function is considered blocking: the call
// site inside the function, and either the terminal MPI primitive name or
// the callee whose own witness continues the chain.
type BlockWitness struct {
	Pos      token.Pos
	Terminal string      // e.g. "Comm.Send" when the call site hits MPI directly
	Callee   *types.Func // non-nil when the block is inherited from a callee
}

// FuncNode is one declared function with a body in a target package.
type FuncNode struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Edges []CallEdge

	AcceptsCtx     bool
	CtxSibling     *types.Func
	OrderSensitive bool
	Blocks         *BlockWitness
}

// Program is the whole-program view shared by every Pass of one run.
type Program struct {
	Pkgs  []*Package
	funcs map[*types.Func]*FuncNode

	atomicMixes []atomicMix // computed lazily by the atomicmix analyzer
	atomicDone  bool
}

// Node returns the graph node for fn, or nil when fn has no body in the
// loaded target packages (dependency-only, interface, or builtin).
func (p *Program) Node(fn *types.Func) *FuncNode {
	if p == nil || fn == nil {
		return nil
	}
	return p.funcs[fn]
}

// FuncNamed finds a node by package path and name; methods are addressed
// as "Recv.Method". Test helper more than analyzer API.
func (p *Program) FuncNamed(pkgPath, name string) *FuncNode {
	for _, n := range p.funcs {
		if n.Pkg.Path != pkgPath {
			continue
		}
		if funcKey(n.Obj) == name {
			return n
		}
	}
	return nil
}

// funcKey renders fn as "Name" or "Recv.Name".
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	if named, okN := t.(*types.Named); okN && named.Obj() != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// buildProgram indexes every function declaration in pkgs, resolves its
// static call edges, and runs the summary fixpoint.
func buildProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, funcs: map[*types.Func]*FuncNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: fn, Decl: fd, Pkg: pkg}
				node.AcceptsCtx = acceptsCtx(fn.Type().(*types.Signature))
				node.CtxSibling = ctxSiblingOf(fn)
				node.Edges = collectEdges(pkg.Info, fd.Body)
				node.OrderSensitive = len(mapRangeSites(pkg.Info, fd.Body, nil)) > 0
				prog.funcs[fn] = node
			}
		}
	}
	prog.propagateBlocks()
	return prog
}

// collectEdges gathers the statically resolvable call sites of body,
// skipping func-literal subtrees (their bodies are independent scopes)
// and the immediate call of `go` statements (the spawn does not block the
// caller; argument expressions are still evaluated synchronously and are
// walked).
func collectEdges(info *types.Info, body *ast.BlockStmt) []CallEdge {
	var edges []CallEdge
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				for _, arg := range v.Call.Args {
					walk(arg)
				}
				return false
			case *ast.CallExpr:
				if fn := staticCallee(info, v); fn != nil {
					edges = append(edges, CallEdge{Callee: fn, Pos: v.Pos()})
				}
			}
			return true
		})
	}
	walk(body)
	return edges
}

// staticCallee resolves call to the *types.Func it invokes, or nil when
// the callee is dynamic (a function value, func literal, or method
// value). Type conversions are filtered out. Interface methods resolve to
// the interface's method object (which has no body).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // func-valued field
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}

// seedBlocking reports whether fn is one of the axiomatic blocking MPI
// primitives (the same table locksend has always used), returning its
// display name.
func seedBlocking(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != mpiPath {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	named, okN := t.(*types.Named)
	if !okN || named.Obj() == nil {
		return "", false
	}
	recv := named.Obj().Name()
	if !blockingMPIMethods[recv][fn.Name()] {
		return "", false
	}
	return recv + "." + fn.Name(), true
}

// propagateBlocks runs the bottom-up may-block fixpoint: a node blocks
// when any resolved call site hits a seeded MPI primitive or a callee
// already known to block. Iterating to a fixpoint handles recursion and
// mutual recursion without an explicit SCC pass.
func (p *Program) propagateBlocks() {
	for changed := true; changed; {
		changed = false
		for _, node := range p.funcs {
			if node.Blocks != nil {
				continue
			}
			for _, e := range node.Edges {
				if name, ok := seedBlocking(e.Callee); ok {
					node.Blocks = &BlockWitness{Pos: e.Pos, Terminal: name}
					changed = true
					break
				}
				if callee := p.funcs[e.Callee]; callee != nil && callee.Blocks != nil {
					node.Blocks = &BlockWitness{Pos: e.Pos, Callee: e.Callee}
					changed = true
					break
				}
			}
		}
	}
}

// BlockChain renders fn's witness as "A → B → Comm.Send" (function names
// only, starting at fn's callee), or the bare terminal for a direct hit.
// Returns "" when fn is not known to block.
func (p *Program) BlockChain(fn *types.Func) string {
	node := p.Node(fn)
	if node == nil || node.Blocks == nil {
		return ""
	}
	var parts []string
	seen := map[*types.Func]bool{}
	for w := node.Blocks; w != nil; {
		if w.Terminal != "" {
			parts = append(parts, w.Terminal)
			break
		}
		if seen[w.Callee] {
			parts = append(parts, funcKey(w.Callee)+"…")
			break
		}
		seen[w.Callee] = true
		parts = append(parts, funcKey(w.Callee))
		next := p.funcs[w.Callee]
		if next == nil {
			break
		}
		w = next.Blocks
	}
	return strings.Join(parts, " → ")
}

// acceptsCtx reports whether sig has a context.Context parameter.
func acceptsCtx(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if namedTypeIs(params.At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// ctxSiblingOf finds the context-accepting variant of fn: a function (or
// method on the same receiver type) named <Name>Context or <Name>Ctx
// whose signature takes a context.Context. Returns nil when fn itself
// already accepts one, or no sibling exists. Signatures survive
// IgnoreFuncBodies type-checking, so the lookup works for dependency
// packages too.
func ctxSiblingOf(fn *types.Func) *types.Func {
	if fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || acceptsCtx(sig) {
		return nil
	}
	names := []string{fn.Name() + "Context", fn.Name() + "Ctx"}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, okP := t.(*types.Pointer); okP {
			t = ptr.Elem()
		}
		named, okN := t.(*types.Named)
		if !okN {
			return nil
		}
		for _, name := range names {
			obj, _, _ := types.LookupFieldOrMethod(named, true, fn.Pkg(), name)
			if m, okM := obj.(*types.Func); okM && acceptsCtx(m.Type().(*types.Signature)) {
				return m
			}
		}
		return nil
	}
	for _, name := range names {
		if obj := fn.Pkg().Scope().Lookup(name); obj != nil {
			if f2, okF := obj.(*types.Func); okF && acceptsCtx(f2.Type().(*types.Signature)) {
				return f2
			}
		}
	}
	return nil
}
