package main

// floateq: `==` and `!=` on floating-point operands are flagged in the
// numerics packages (solver, circuit, mat, kirchhoff). Recovered R values
// and effective resistances are tolerance-exact at best (§IV: iterative
// recovery stops at a residual target), so raw equality either always
// fails or hides a latent precision assumption. The one always-sound
// idiom, `x != x` as a NaN test, is exempt; everything else needs an
// explicit `//parmavet:allow floateq` with a justification — typically
// "this compares against an exact sentinel that was assigned, not
// computed".

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var floateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floats in the numerics packages",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case "parma/internal/solver", "parma/internal/circuit",
			"parma/internal/mat", "parma/internal/kirchhoff":
			return true
		}
		// Fixture packages opt in by directory name.
		return strings.Contains(pkgPath, "parmavet/testdata/")
	},
	Run: runFloateq,
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func runFloateq(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(info.TypeOf(be.X)) && !isFloat(info.TypeOf(be.Y)) {
				return true
			}
			// Both sides constant: folded at compile time, exact by
			// definition.
			if info.Types[be.X].Value != nil && info.Types[be.Y].Value != nil {
				return true
			}
			// x != x / x == x: the portable NaN test, exact by IEEE 754.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "%s on float operands: recovered values are tolerance-exact, not bit-exact; compare with a tolerance or annotate //parmavet:allow floateq with the reason", be.Op)
			return true
		})
	}
}
