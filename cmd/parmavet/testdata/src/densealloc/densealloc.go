// Package densealloc exercises the densealloc analyzer: CSR.Dense() on
// the serve path materializes the full dense matrix and must not appear
// outside tests and annotated small-problem sites.
package densealloc

// CSR stands in for sparse.CSR: the analyzer matches the named type.
type CSR struct {
	rows, cols int
}

// Dense is the densification under test.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.rows)
	for i := range out {
		out[i] = make([]float64, m.cols)
	}
	return out
}

// NNZ is a sparse accessor; calls to it are never findings.
func (m *CSR) NNZ() int { return 0 }

// Grid is an unrelated type that happens to have a Dense method; the
// analyzer keys on the CSR type, not the method name alone.
type Grid struct{}

func (Grid) Dense() int { return 0 }

// direct is the core finding: densifying a CSR on the serve path.
func direct(m *CSR) [][]float64 {
	return m.Dense() // want "on the serve path materializes"
}

// throughLocal: aliasing through a local does not hide the receiver type.
func throughLocal(m *CSR) [][]float64 {
	alias := m
	return alias.Dense() // want "on the serve path materializes"
}

// valueReceiver: a dereferenced value densifies just the same.
func valueReceiver(m CSR) [][]float64 {
	return m.Dense() // want "on the serve path materializes"
}

// otherDense: Grid.Dense is not a CSR densification, nothing to flag.
func otherDense(g Grid) int {
	return g.Dense()
}

// sparseOps: staying on the sparse accessors is the sanctioned shape.
func sparseOps(m *CSR) int {
	return m.NNZ()
}

// sanctioned: a justified, annotated small-problem densification.
func sanctioned(m *CSR) [][]float64 {
	return m.Dense() //parmavet:allow densealloc -- fixture stand-in for a test-only comparison bounded to n<=8
}
