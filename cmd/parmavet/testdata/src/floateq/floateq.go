// Package floateq exercises the floateq analyzer: no ==/!= on floats,
// except the NaN self-compare idiom, compile-time constant folds, and
// sites annotated //parmavet:allow floateq.
package floateq

import "math"

// tolerance is the recommended shape and is not flagged.
func tolerance(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// exact equality on computed floats is the core finding.
func exact(a, b float64) bool {
	return a == b // want "== on float operands"
}

func notEqual(a, b float64) bool {
	return a != b // want "!= on float operands"
}

// float32 comparisons are flagged the same way.
func narrow(a, b float32) bool {
	return a == b // want "== on float operands"
}

// isNaN is the IEEE 754 self-compare idiom, exact by definition.
func isNaN(x float64) bool {
	return x != x
}

// constants fold at compile time; nothing to flag.
func constants() bool {
	return 1.5 == 3.0/2.0
}

// intsFine: only float operands are in scope.
func intsFine(a, b int) bool {
	return a == b
}

// sentinelTrailing suppresses with a trailing comment on the same line.
func sentinelTrailing(tol float64) float64 {
	if tol == 0 { //parmavet:allow floateq -- zero is the unset-option sentinel, assigned not computed
		tol = 1e-10
	}
	return tol
}

// sentinelAbove suppresses with a standalone comment on the line above.
func sentinelAbove(x float64) bool {
	//parmavet:allow floateq -- comparing against an assigned sentinel
	return x == 0
}
