// Package mpierr exercises the mpierr analyzer: error results from the MPI
// layer's Comm/World/Transport methods may not be discarded.
package mpierr

import "parma/internal/mpi"

// dropped discards the error of a bare call statement.
func dropped(c *mpi.Comm) {
	c.Barrier() // want "contains an error that is discarded"
}

// blank lands the error in the blank identifier.
func blank(c *mpi.Comm) {
	_ = c.Barrier() // want "assigned to the blank identifier"
}

// blankSecond drops only the error position of a multi-result call.
func blankSecond(c *mpi.Comm) []byte {
	data, _ := c.Bcast(0, nil) // want "assigned to the blank identifier"
	return data
}

// inGoroutine makes the error unreachable.
func inGoroutine(c *mpi.Comm) {
	go c.Barrier() // want "unreachable in a go statement"
}

// inDefer discards the error at function exit.
func inDefer(c *mpi.Comm) {
	defer c.Barrier() // want "discarded by defer"
}

// worldDropped: World.Run returns []error, which counts as an error result.
func worldDropped(w *mpi.World) {
	w.Run(func(c *mpi.Comm) error { return nil }) // want "contains an error that is discarded"
}

// transportDropped: the Transport interface's methods are covered too.
func transportDropped(tr mpi.Transport) {
	tr.Send(0, 1, nil) // want "contains an error that is discarded"
}

// checked is the clean shape: every error lands in a checked variable.
func checked(c *mpi.Comm) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	_, _, err := c.Recv(0, 1)
	return err
}

// allowed demonstrates suppression of an intentional discard.
func allowed(c *mpi.Comm) {
	c.Barrier() //parmavet:allow mpierr -- fixture: suppression path under test
}
