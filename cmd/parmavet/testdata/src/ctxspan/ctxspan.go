// Package ctxspan exercises the ctxspan analyzer: starting a span with the
// context-blind obs.StartSpan/obs.StartOn while a context.Context parameter
// is lexically in scope detaches the span from the request trace.
package ctxspan

import (
	"context"

	"parma/internal/obs"
)

// blindWithCtx is the canonical miss: ctx is right there, the span forks
// off the trace anyway.
func blindWithCtx(ctx context.Context) {
	sp := obs.StartSpan("work") // want "obs.StartSpan ignores the in-scope context parameter ctx"
	defer sp.End()
	_ = ctx
}

// blindStartOn covers the track-addressed constructor.
func blindStartOn(ctx context.Context, track int32) {
	sp := obs.StartOn(track, "work") // want "obs.StartOn ignores the in-scope context parameter ctx"
	defer sp.End()
	_ = ctx
}

// contextAware is the sanctioned shape: the span parents to the trace.
func contextAware(ctx context.Context) {
	ctx, sp := obs.StartSpanCtx(ctx, "work")
	defer sp.End()
	inner := obs.StartSpanIn(ctx, "inner")
	inner.End()
}

// noContext has nothing to thread; the blind constructor is the only
// option and stays clean.
func noContext() {
	sp := obs.StartSpan("work")
	defer sp.End()
}

// closureInheritsCtx: the literal has no context parameter of its own, but
// its enclosing function does and the closure can capture it.
func closureInheritsCtx(ctx context.Context) func() {
	return func() {
		sp := obs.StartSpan("work") // want "obs.StartSpan ignores the in-scope context parameter ctx"
		sp.End()
		_ = ctx
	}
}

// literalWithOwnCtx: the nearest context parameter belongs to the literal
// itself.
func literalWithOwnCtx() func(context.Context) {
	return func(ctx context.Context) {
		sp := obs.StartSpan("work") // want "obs.StartSpan ignores the in-scope context parameter ctx"
		sp.End()
		_ = ctx
	}
}

// ignoredCtx: a parameter named _ cannot be threaded from this frame, so
// the blind start is tolerated.
func ignoredCtx(_ context.Context) {
	sp := obs.StartSpan("work")
	defer sp.End()
}

// allowAnnotated documents an intentional detachment: a background janitor
// span that must outlive the request.
func allowAnnotated(ctx context.Context) {
	sp := obs.StartSpan("janitor") //parmavet:allow ctxspan — deliberately outlives the request
	defer sp.End()
	_ = ctx
}
