// Package inner is the callee side of the cross-package call-graph
// fixtures: the outer xchain package locks across Exchange, reads Gauge
// plainly, and drops its ctx calling Fetch — every detection requires an
// edge or a summary that crosses the package boundary.
package inner

import (
	"context"
	"sync/atomic"

	"parma/internal/mpi"
)

// Gauge carries a field updated atomically here and — the bug under test
// — read plainly from the outer package.
type Gauge struct {
	Value int64
}

// Bump is the atomic side of the cross-package mix.
func Bump(g *Gauge) {
	atomic.AddInt64(&g.Value, 1)
}

// Exchange parks in a collective: a caller holding a lock deadlocks, no
// matter which package the caller lives in.
func Exchange(c *mpi.Comm) error {
	return c.Barrier()
}

// Fetch is the context-blind variant …
func Fetch() error { return nil }

// … and FetchContext its ctx-accepting sibling.
func FetchContext(ctx context.Context) error { return ctx.Err() }
