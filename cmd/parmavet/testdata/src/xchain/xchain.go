// Package xchain exercises the cross-package half of the call-graph
// engine: every finding in this file depends on an edge or a summary
// resolved from the sibling inner package. The callgraph unit tests also
// assert the edges and summary propagation directly over these two
// packages.
package xchain

import (
	"context"
	"sync"

	"parma/cmd/parmavet/testdata/src/xchain/inner"
	"parma/internal/mpi"
)

type state struct {
	mu sync.Mutex
}

// relay adds a local hop before the cross-package one.
func relay(c *mpi.Comm) error { return inner.Exchange(c) }

// lockedExchange holds the lock across a call that blocks one package
// away.
func lockedExchange(c *mpi.Comm, s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return inner.Exchange(c) // want "Exchange may transitively block in an MPI call \(via Comm.Barrier\) while s.mu is held"
}

// twoHopDeadlock: local relay, then the cross-package hop; the witness
// chain names both.
func twoHopDeadlock(c *mpi.Comm, s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return relay(c) // want "relay may transitively block in an MPI call \(via Exchange → Comm.Barrier\) while s.mu is held"
}

// readsPlainly reads the atomically-updated gauge without atomics: the
// atomic side lives in inner.
func readsPlainly(g *inner.Gauge) int64 {
	inner.Bump(g)
	return g.Value // want "field Value is accessed atomically at"
}

// dropsCtx calls the blind variant across packages.
func dropsCtx(ctx context.Context) error {
	return inner.Fetch() // want "Fetch ignores the in-scope context parameter ctx but has the context-accepting sibling FetchContext"
}

// threaded is the clean cross-package shape.
func threaded(ctx context.Context) error { return inner.FetchContext(ctx) }

// unlockedExchange blocks with no lock held: clean.
func unlockedExchange(c *mpi.Comm) error { return inner.Exchange(c) }

// allowedExchange demonstrates suppression of a justified cross-package
// hold.
func allowedExchange(c *mpi.Comm, s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return inner.Exchange(c) //parmavet:allow locksend -- fixture: cross-package suppression path under test
}
