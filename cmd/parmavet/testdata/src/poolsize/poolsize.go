// Package poolsize exercises the poolsize analyzer: goroutine fan-out
// loops in the numerics packages must go through the shared worker pool
// (mat.ParallelFor) so kernel parallelism stays bounded and composes with
// the server's request-level workers.
package poolsize

// fanOut is the core finding: one goroutine per item, width bounded only
// by the data.
func fanOut(items []int, out chan<- int) {
	for _, v := range items {
		go send(out, v) // want "go statement inside a loop"
	}
}

// counted three-clause loops are flagged the same way.
func counted(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		go send(out, i) // want "go statement inside a loop"
	}
}

// viaLiteral still spawns once per iteration when the literal is called in
// the loop; the check is lexical, so it is flagged too.
func viaLiteral(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		spawn := func(v int) {
			go send(out, v) // want "go statement inside a loop"
		}
		spawn(i)
	}
}

// single spawns are not fan-out; only loops are in scope.
func single(out chan<- int) {
	go send(out, 1)
}

// afterLoop: the loop and the spawn are siblings, nothing to flag.
func afterLoop(n int, out chan<- int) {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	go send(out, sum)
}

// sanctioned is the pool.go shape: a justified, annotated spawn site.
func sanctioned(workers int, out chan<- int) {
	for w := 0; w < workers; w++ {
		go send(out, w) //parmavet:allow poolsize -- fixture stand-in for the pool's own spawn site
	}
}

func send(out chan<- int, v int) { out <- v }
