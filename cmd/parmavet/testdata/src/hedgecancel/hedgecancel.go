// Package hedgecancel exercises the hedgecancel analyzer: goroutines
// whose work reaches (*http.Client).Do need a cancellable context, and a
// function racing two or more such attempts needs a shared
// context.WithCancel parent so the loser is reeled in when a winner
// returns.
package hedgecancel

import (
	"context"
	"net/http"
	"time"
)

// sendOne is a plain bounded attempt: it derives its own per-attempt
// timeout, so anything spawning it is individually cancellable.
func sendOne(ctx context.Context, client *http.Client, url string) {
	attemptCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// sendRaw performs the request on whatever context it is handed — no
// derivation anywhere on its path.
func sendRaw(ctx context.Context, client *http.Client, url string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}

// danglingAttempt is the per-launch core finding: an asynchronous
// outbound attempt with no cancellable context anywhere between the
// spawn and Client.Do.
func danglingAttempt(ctx context.Context, client *http.Client) {
	go sendRaw(ctx, client, "http://a") // want "no cancellable context anywhere on the path"
}

// detachedAttempt manufactures its own context inside the goroutine:
// nothing upstream can ever cancel it.
func detachedAttempt(client *http.Client) {
	go func() {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, "http://a", nil) // want "manufactured context"
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			return
		}
		resp.Body.Close()
	}()
}

// naiveHedge races two attempts that are each bounded by sendOne's own
// timeout, but holds no shared cancel handle: the loser runs to its full
// deadline after the winner answered.
func naiveHedge(ctx context.Context, client *http.Client) {
	go sendOne(ctx, client, "http://primary")
	go sendOne(ctx, client, "http://secondary") // want "launches 2 concurrent outbound attempts without a cancellable shared parent"
}

// loopedFanout is the same defect through a loop: one go statement, many
// concurrent attempts.
func loopedFanout(ctx context.Context, client *http.Client, urls []string) {
	for _, u := range urls {
		//parmavet:allow poolsize -- the fixture exercises hedgecancel's loop shape, not numerics fan-out.
		go sendOne(ctx, client, u) // want "concurrent outbound attempts without a cancellable shared parent"
	}
}

// goodHedge is the sanctioned shape: both attempts derive from one
// cancellable parent, and cancel reels the loser in.
func goodHedge(ctx context.Context, client *http.Client) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{}, 2)
	go func() {
		sendRaw(hctx, client, "http://primary")
		done <- struct{}{}
	}()
	go func() {
		sendRaw(hctx, client, "http://secondary")
		done <- struct{}{}
	}()
	<-done
}

// goodSingle: one attempt, bounded downstream by sendOne's per-attempt
// timeout — nothing to race, nothing to flag.
func goodSingle(ctx context.Context, client *http.Client) {
	go sendOne(ctx, client, "http://only")
}

// blankedCancel derives a parent but throws the handle away, which is no
// parent at all.
func blankedCancel(ctx context.Context, client *http.Client) {
	hctx, _ := context.WithCancel(ctx)
	go sendOne(hctx, client, "http://primary")
	go sendOne(hctx, client, "http://secondary") // want "launches 2 concurrent outbound attempts without a cancellable shared parent"
}

// allowedFanout documents per-peer probe fan-out: same lexical shape as
// a hedge, suppressed with a justification.
func allowedFanout(ctx context.Context, client *http.Client, urls []string) {
	for _, u := range urls {
		//parmavet:allow hedgecancel,poolsize -- per-peer probes, each self-bounded; no duplicated request to cancel.
		go sendOne(ctx, client, u)
	}
}

// notOutbound: concurrency without HTTP is out of scope.
func notOutbound(vals []int) int {
	sum := make(chan int, 1)
	go func() {
		total := 0
		for _, v := range vals {
			total += v * v
		}
		sum <- total
	}()
	return <-sum
}
