// Package spanend exercises the spanend analyzer: every obs.Span produced
// by StartSpan/StartOn (or a helper returning one) must reach End on every
// path out of the function that holds it.
package spanend

import (
	"errors"

	"parma/internal/obs"
)

// leakOnEarlyReturn mirrors the Comm.Barrier bug: the error path returns
// before End runs.
func leakOnEarlyReturn(fail bool) error {
	sp := obs.StartSpan("work") // want "span started here is not ended on every path"
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// deferEnd is the canonical clean shape.
func deferEnd(fail bool) error {
	sp := obs.StartSpan("work")
	defer sp.End()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// deferredClosure ends the span inside a deferred func literal.
func deferredClosure() {
	sp := obs.StartOn(0, "work")
	defer func() {
		if sp.Active() {
			sp.End()
		}
	}()
}

// activeGuard: on the false branch of Active the span is inert and needs
// no End.
func activeGuard() {
	sp := obs.StartSpan("work")
	if sp.Active() {
		sp.End()
	}
}

// conditionalEnd leaks when only one branch ends the span.
func conditionalEnd(ok bool) {
	sp := obs.StartSpan("work") // want "span started here is not ended on every path"
	if ok {
		sp.End()
	}
}

// discarded throws the span away at the start call itself.
func discarded() {
	_ = obs.StartSpan("work") // want "result of span start is discarded"
}

// overwritten loses the first span when the variable is reassigned.
func overwritten() {
	sp := obs.StartSpan("first") // want "overwritten while still open"
	sp = obs.StartSpan("second")
	sp.End()
}

// handOff moves ownership to the caller; the caller must End it.
func handOff() obs.Span {
	sp := obs.StartSpan("work")
	return sp
}

// conditionalStart is the `var sp obs.Span; if enabled { sp = ... }` idiom:
// the zero span's End is a no-op, so one unconditional End covers both arms.
func conditionalStart() {
	var sp obs.Span
	if obs.Enabled() {
		sp = obs.StartSpan("work")
	}
	sp.End()
}

// loopLeak leaks on the continue path inside the loop body.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		sp := obs.StartSpan("iter") // want "span started here is not ended on every path"
		if i == 0 {
			continue
		}
		sp.End()
	}
}

// helperSource: any call returning obs.Span is a span source, not just the
// obs package entry points.
func helperSource(fail bool) error {
	sp := startNamed("helper") // want "span started here is not ended on every path"
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

func startNamed(name string) obs.Span {
	return obs.StartSpan(name)
}

// allowed is the same leak as leakOnEarlyReturn, suppressed by an allow
// comment on the span-start line (the position findings are reported at).
func allowed(fail bool) error {
	sp := obs.StartSpan("fire-and-forget") //parmavet:allow spanend -- fixture: suppression path under test
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}
