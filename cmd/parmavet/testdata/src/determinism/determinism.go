// Package determinism exercises the determinism analyzer: in the
// deterministic packages (mat, solver, kirchhoff, sparse, mpi) results
// may not depend on map iteration order, the shared math/rand global
// source, or the wall clock — any of the three silently breaks the
// bit-identical formation/recovery proofs.
package determinism

import (
	"math/rand"
	"sort"
	"time"

	"parma/internal/mpi"
)

// sumWeights accumulates floats in map order: FP addition is not
// associative, so the sum differs run to run.
func sumWeights(w map[int]float64) float64 {
	var total float64
	for _, v := range w {
		total += v // want "floating-point accumulation into total ordered by map iteration"
	}
	return total
}

// sumWeightsSpelled is the same bug written as x = x + v.
func sumWeightsSpelled(w map[int]float64) float64 {
	var total float64
	for _, v := range w {
		total = total + v // want "floating-point accumulation into total ordered by map iteration"
	}
	return total
}

// collectIDs appends in map order and never sorts: the slice order — and
// anything derived from it — is random per run.
func collectIDs(set map[int]bool) []int {
	var ids []int
	for id := range set {
		ids = append(ids, id) // want "append to ids ordered by map iteration"
	}
	return ids
}

// sortedIDs is the sanctioned shape: collect, then sort.
func sortedIDs(set map[int]bool) []int {
	var ids []int
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// broadcastAll issues wire traffic in map order: peers observe a
// different message sequence every run.
func broadcastAll(c *mpi.Comm, blocks map[int][]byte) error {
	for rank, payload := range blocks {
		if err := c.Send(rank, 1, payload); err != nil { // want "MPI traffic \(Comm.Send\) issued in map-iteration order"
			return err
		}
	}
	return nil
}

// notifyPeers hides the Send one hop down; the call graph resolves it.
func notifyPeers(c *mpi.Comm, peers map[int]bool) error {
	for p := range peers {
		if err := ping(c, p); err != nil { // want "call to ping issues MPI traffic \(via Comm.Send\) in map-iteration order"
			return err
		}
	}
	return nil
}

func ping(c *mpi.Comm, rank int) error { return c.Send(rank, 2, nil) }

// jitter draws from the global source: the value depends on every other
// draw in the process.
func jitter() float64 {
	return rand.Float64() // want "rand.Float64 draws from the shared global source"
}

// seededJitter threads an explicit seeded source: deterministic.
func seededJitter(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

// stamp turns the wall clock into a value.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now\(\).UnixNano turns the wall clock into a value"
}

// elapsed uses the clock for a duration, which is sanctioned.
func elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// countTrue accumulates an int in map order: integer addition commutes
// exactly, so the count is deterministic and clean.
func countTrue(set map[int]bool) int {
	n := 0
	for _, v := range set {
		if v {
			n += 1
		}
	}
	return n
}

// scaleLocal only touches loop-local state: clean.
func scaleLocal(w map[int]float64) {
	for _, v := range w {
		scaled := v * 2
		_ = scaled
	}
}

// allowedStamp demonstrates suppression for a justified wall-clock value.
func allowedStamp() int64 {
	return time.Now().Unix() //parmavet:allow determinism -- fixture: suppression path under test
}
