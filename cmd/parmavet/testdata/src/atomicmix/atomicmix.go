// Package atomicmix exercises the atomicmix analyzer: a struct field
// accessed both through sync/atomic functions and plainly is a data race
// the race detector only catches when the two access patterns collide
// during a test run.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  int64
	clean int64
	plain int64
}

// incr is the atomic side of the mix.
func (c *counter) incr() {
	atomic.AddInt64(&c.hits, 1)
}

// read bypasses the atomics: flagged at the plain site.
func (c *counter) read() int64 {
	return c.hits // want "field hits is accessed atomically at"
}

// bump writes plainly to the same field: flagged too.
func (c *counter) bump() {
	c.hits++ // want "field hits is accessed atomically at"
}

// incrClean/readClean use atomics consistently: clean.
func (c *counter) incrClean()       { atomic.AddInt64(&c.clean, 1) }
func (c *counter) readClean() int64 { return atomic.LoadInt64(&c.clean) }

// bumpPlain never uses atomics on its field: clean (guarding it is the
// race detector's job, not this analyzer's).
func (c *counter) bumpPlain() { c.plain++ }

// readRacy demonstrates suppression for a justified single-writer read.
func (c *counter) readRacy() int64 {
	return c.hits //parmavet:allow atomicmix -- fixture: suppression path under test
}
