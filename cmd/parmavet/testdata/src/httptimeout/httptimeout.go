// Package httptimeout exercises the httptimeout analyzer: every
// http.Server composite literal must bound the header-read phase with
// ReadHeaderTimeout (or the stricter ReadTimeout), except sites annotated
// //parmavet:allow httptimeout.
package httptimeout

import (
	"context"
	"net/http"
	"time"
)

// bare is the core finding: the zero timeouts wait forever on headers.
func bare() *http.Server {
	return &http.Server{ // want "http.Server literal without ReadHeaderTimeout"
		Addr: ":8080",
	}
}

// valueLiteral is flagged the same as the pointer form.
func valueLiteral() http.Server {
	return http.Server{Addr: ":8080"} // want "http.Server literal without ReadHeaderTimeout"
}

// emptyLiteral: Server{} has no fields at all, so no timeout either.
func emptyLiteral() *http.Server {
	return &http.Server{} // want "http.Server literal without ReadHeaderTimeout"
}

// withHeaderTimeout is the recommended shape and is not flagged.
func withHeaderTimeout() *http.Server {
	return &http.Server{
		Addr:              ":8080",
		ReadHeaderTimeout: 10 * time.Second,
	}
}

// withReadTimeout also bounds the header phase, so it satisfies the check.
func withReadTimeout() *http.Server {
	return &http.Server{
		Addr:        ":8080",
		ReadTimeout: time.Minute,
	}
}

// otherLiterals: only http.Server is in scope.
func otherLiterals() *http.Transport {
	return &http.Transport{MaxIdleConns: 4}
}

// allowed suppresses with an annotation and a justification.
func allowed() *http.Server {
	//parmavet:allow httptimeout -- localhost-only test server, torn down by the harness
	return &http.Server{Addr: "127.0.0.1:0"}
}

// clientBare is the outbound core finding: the zero Timeout waits on a
// wedged peer forever.
func clientBare() *http.Client {
	return &http.Client{} // want "http.Client literal without Timeout"
}

// clientValueLiteral is flagged the same as the pointer form.
func clientValueLiteral() http.Client {
	return http.Client{Transport: http.DefaultTransport} // want "http.Client literal without Timeout"
}

// clientWithTimeout is the recommended shape and is not flagged.
func clientWithTimeout() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}

// defaultClientHelpers route through the timeout-less DefaultClient with
// no context, so each is flagged.
func defaultClientHelpers() {
	_, _ = http.Get("http://example.com")                     // want "http.Get uses the timeout-less DefaultClient"
	_, _ = http.Post("http://example.com", "text/plain", nil) // want "http.Post uses the timeout-less DefaultClient"
	_, _ = http.Head("http://example.com")                    // want "http.Head uses the timeout-less DefaultClient"
	_, _ = http.PostForm("http://example.com", nil)           // want "http.PostForm uses the timeout-less DefaultClient"
}

// methodCalls on a timeout-bearing client are the sanctioned alternative
// and must not be confused with the package-level helpers.
func methodCalls() {
	c := clientWithTimeout()
	_, _ = c.Get("http://example.com")
	_, _ = c.Head("http://example.com")
}

// contextlessRequest cannot carry a per-attempt deadline.
func contextlessRequest() (*http.Request, error) {
	return http.NewRequest(http.MethodGet, "http://example.com", nil) // want "http.NewRequest carries no context"
}

// contextRequest is the sanctioned constructor.
func contextRequest(ctx context.Context) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, "http://example.com", nil)
}

// allowedClient suppresses with an annotation and a justification.
func allowedClient() *http.Client {
	//parmavet:allow httptimeout -- lifetime bounded by the enclosing test binary
	return &http.Client{}
}
