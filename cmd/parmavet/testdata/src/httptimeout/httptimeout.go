// Package httptimeout exercises the httptimeout analyzer: every
// http.Server composite literal must bound the header-read phase with
// ReadHeaderTimeout (or the stricter ReadTimeout), except sites annotated
// //parmavet:allow httptimeout.
package httptimeout

import (
	"net/http"
	"time"
)

// bare is the core finding: the zero timeouts wait forever on headers.
func bare() *http.Server {
	return &http.Server{ // want "http.Server literal without ReadHeaderTimeout"
		Addr: ":8080",
	}
}

// valueLiteral is flagged the same as the pointer form.
func valueLiteral() http.Server {
	return http.Server{Addr: ":8080"} // want "http.Server literal without ReadHeaderTimeout"
}

// emptyLiteral: Server{} has no fields at all, so no timeout either.
func emptyLiteral() *http.Server {
	return &http.Server{} // want "http.Server literal without ReadHeaderTimeout"
}

// withHeaderTimeout is the recommended shape and is not flagged.
func withHeaderTimeout() *http.Server {
	return &http.Server{
		Addr:              ":8080",
		ReadHeaderTimeout: 10 * time.Second,
	}
}

// withReadTimeout also bounds the header phase, so it satisfies the check.
func withReadTimeout() *http.Server {
	return &http.Server{
		Addr:        ":8080",
		ReadTimeout: time.Minute,
	}
}

// otherLiterals: only http.Server is in scope.
func otherLiterals() *http.Transport {
	return &http.Transport{MaxIdleConns: 4}
}

// allowed suppresses with an annotation and a justification.
func allowed() *http.Server {
	//parmavet:allow httptimeout -- localhost-only test server, torn down by the harness
	return &http.Server{Addr: "127.0.0.1:0"}
}
