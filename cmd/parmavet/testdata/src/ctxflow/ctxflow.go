// Package ctxflow exercises the ctxflow analyzer: a function holding a
// context.Context may not call a callee's context-blind variant when a
// ctx-accepting sibling (<Name>Context / <Name>Ctx) exists, and may not
// manufacture context.Background()/TODO() — either shape silently breaks
// the deadline, cancellation, and trace chain at that hop.
package ctxflow

import "context"

type runner struct{ n int }

func (r *runner) Run() error                       { r.n++; return nil }
func (r *runner) RunCtx(ctx context.Context) error { r.n++; return ctx.Err() }

func work() error { return nil }

// workContext is the ctx-accepting sibling of work; calling work from
// inside it is the canonical wrapper pattern and exempt.
func workContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return work()
}

// dropsCtx holds a ctx but calls the blind variant.
func dropsCtx(ctx context.Context) error {
	return work() // want "work ignores the in-scope context parameter ctx but has the context-accepting sibling workContext"
}

// dropsCtxMethod is the method-sibling case.
func dropsCtxMethod(ctx context.Context, r *runner) error {
	return r.Run() // want "Run ignores the in-scope context parameter ctx but has the context-accepting sibling RunCtx"
}

// closureDrops: a func literal inherits the enclosing ctx, because the
// closure could capture and thread it.
func closureDrops(ctx context.Context) func() error {
	return func() error {
		return work() // want "work ignores the in-scope context parameter ctx"
	}
}

// manufactures a fresh context while holding the request's.
func manufactures(ctx context.Context) error {
	return workContext(context.Background()) // want "context.Background manufactures a fresh context while the in-scope context parameter ctx is held"
}

// todoOnPath: TODO is no better than Background.
func todoOnPath(ctx context.Context) error {
	return workContext(context.TODO()) // want "context.TODO manufactures a fresh context"
}

// threads is the clean shape: the ctx reaches every hop.
func threads(ctx context.Context, r *runner) error {
	if err := workContext(ctx); err != nil {
		return err
	}
	return r.RunCtx(ctx)
}

// entryPoint holds no ctx, so Background is legitimate here.
func entryPoint() error {
	return workContext(context.Background())
}

// blindParam cannot thread a _ parameter; the frame is skipped.
func blindParam(_ context.Context) error { return work() }

// allowedDetach demonstrates suppression for a justified detachment.
func allowedDetach(ctx context.Context) error {
	return workContext(context.Background()) //parmavet:allow ctxflow -- fixture: suppression path under test
}
