// The transitive locksend cases: the deadlock shapes the original
// lexical check provably missed. Before the call-graph engine, locksend
// only saw Comm/World/Transport methods named at the call site itself —
// wrapping the Barrier in a one-line helper (exactly `helper` below)
// silenced it. TestLocksendLexicalMiss runs the pre-upgrade logic (a nil
// Program degrades the analyzer to its old lexical behavior) over this
// file and asserts these shapes go unreported, then confirms the
// interprocedural pass catches them.
package locksend

import "parma/internal/mpi"

// helper wraps the collective one call away from the lock.
func helper(c *mpi.Comm) error { return c.Barrier() }

// relay adds a second hop.
func relay(c *mpi.Comm) error { return helper(c) }

// hiddenDeadlock is the shape the lexical check missed: the blocking
// call is one frame down.
func hiddenDeadlock(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return helper(c) // want "helper may transitively block in an MPI call \(via Comm.Barrier\) while s.mu is held"
}

// deepDeadlock pushes the Barrier two frames down; the witness chain
// names every hop.
func deepDeadlock(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return relay(c) // want "relay may transitively block in an MPI call \(via helper → Comm.Barrier\) while s.mu is held"
}

// spawnIsClean: the spawned goroutine does not hold this goroutine's
// lock, so `go` of a blocking function is not a deadlock here.
func spawnIsClean(c *mpi.Comm, s *shared) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go logBarrier(c)
}

func logBarrier(c *mpi.Comm) {
	if err := c.Barrier(); err != nil {
		panic(err)
	}
}

// copyThenCall is the clean shape: the lock is released before the
// transitive block.
func copyThenCall(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	n := len(s.vals)
	s.mu.Unlock()
	_ = n
	return helper(c)
}

// allowedTransitive demonstrates suppression of a justified hold.
func allowedTransitive(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return helper(c) //parmavet:allow locksend -- fixture: transitive suppression path under test
}
