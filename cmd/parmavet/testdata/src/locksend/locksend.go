// Package locksend exercises the locksend analyzer: a sync.Mutex or
// RWMutex may not be held across a blocking MPI call, because a rank
// parked in Recv while holding a lock another rank needs is a distributed
// deadlock under rendezvous delivery.
package locksend

import (
	"sync"

	"parma/internal/mpi"
)

type shared struct {
	mu   sync.Mutex
	vals []float64
}

type table struct {
	mu sync.RWMutex
	m  map[int]float64
}

// deadlock holds the lock across a collective.
func deadlock(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	err := c.Barrier() // want "may block while s.mu is held"
	s.mu.Unlock()
	return err
}

// deferUnlock keeps the lock held until exit, so the blocking call after
// it is still covered.
func deferUnlock(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Barrier() // want "may block while s.mu is held"
}

// readLock: RLock on an RWMutex blocks writers just the same.
func readLock(c *mpi.Comm, t *table, dst int) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return c.Send(dst, 1, nil) // want "may block while t.mu is held"
}

// mayHold is flagged because the lock is held on at least one path.
func mayHold(c *mpi.Comm, s *shared, flag bool) error {
	if flag {
		s.mu.Lock()
	}
	err := c.Barrier() // want "may block while s.mu is held"
	if flag {
		s.mu.Unlock()
	}
	return err
}

// released is the clean shape: copy under the lock, block after.
func released(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	v := s.vals
	s.mu.Unlock()
	_, err := c.AllreduceSum(v)
	return err
}

// nonBlockingUnderLock: local accessors are fine to call while locked.
func nonBlockingUnderLock(c *mpi.Comm, s *shared) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Rank() + len(s.vals)
}

// allowed demonstrates suppression for a justified hold.
func allowed(c *mpi.Comm, s *shared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Barrier() //parmavet:allow locksend -- fixture: suppression path under test
}
