// Package retrybound is the parmavet fixture for the retrybound
// analyzer: retry loops that sleep between attempts must bound them.
package retrybound

import (
	"context"
	"time"
)

func try() bool { return false }

// Unbounded for{}: sleeps forever if try never succeeds.
func spinForever() {
	for { // want "unbounded retry loop"
		if try() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A condition alone is not a bound: try() may never flip.
func spinOnCondition() {
	for !try() { // want "unbounded retry loop"
		time.Sleep(10 * time.Millisecond)
	}
}

// <-time.After is the same backoff in channel clothing.
func spinOnAfter(stop chan struct{}) {
	for { // want "unbounded retry loop"
		select {
		case <-stop:
		case <-time.After(10 * time.Millisecond):
			if try() {
				return
			}
		}
	}
}

// The backoff hiding in a func literal still runs per iteration.
func spinViaClosure() {
	for { // want "unbounded retry loop"
		wait := func() { time.Sleep(time.Millisecond) }
		wait()
		if try() {
			return
		}
	}
}

// Bounded counter: the canonical shape, mirrors the reliable transport.
func boundedAttempts() {
	for attempt := 1; attempt <= 8; attempt++ {
		if try() {
			return
		}
		time.Sleep(time.Duration(attempt) * time.Millisecond)
	}
}

// Ranging over a finite attempt schedule is a bound.
func boundedBySchedule(backoffs []time.Duration) {
	for _, b := range backoffs {
		if try() {
			return
		}
		time.Sleep(b)
	}
}

// A wall-clock deadline check in the body is a bound.
func boundedByDeadline(deadline time.Time) {
	for {
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// A deadline in the loop condition works too.
func boundedByCondDeadline(deadline time.Time) {
	for time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// Context cancellation is a bound: the caller owns the retry budget.
func boundedByContext(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
			if try() {
				return
			}
		}
	}
}

// Deliberately unbounded supervisors opt out with a reason.
func supervisor() {
	//parmavet:allow retrybound -- must outlive any fault and retry forever
	for {
		if try() {
			return
		}
		time.Sleep(time.Second)
	}
}

// A loop that never sleeps is not a retry loop, whatever its shape.
func busyButNotRetry() {
	for {
		if try() {
			return
		}
	}
}
