package main

// hedgecancel: duplicated outbound work must be cancellable. The fleet
// router races hedged attempts against slow backends — spawn a second
// request, keep whichever answers first. The failure mode is the loser:
// an attempt launched in a goroutine with no cancellable context keeps a
// worker solving a request nobody will read, and under load those
// zombies are exactly the capacity the hedge was supposed to buy back.
//
// An "asynchronous outbound attempt" is a `go` statement whose spawned
// work reaches (*net/http.Client).Do — lexically inside the goroutine
// body, or through any chain of statically resolved calls (the
// call-graph engine's edges). Three shapes are flagged:
//
//   - an attempt that manufactures its own context.Background()/TODO():
//     it detaches from every caller, so nothing can ever cancel it;
//   - an attempt with no cancellable derivation anywhere — neither the
//     launching function nor anything on the path to Client.Do calls
//     context.WithCancel/WithTimeout/WithDeadline (with the cancel func
//     kept). Such a goroutine dangles until the transport gives up;
//   - the hedge shape proper: a function launching two or more
//     concurrent attempts (two go statements, or one inside a loop)
//     without deriving a cancellable *shared parent* in its own body. A
//     per-attempt timeout buried in a callee bounds each attempt but
//     cannot reel the loser in the moment a winner returns — hedging
//     without `hctx, cancel := context.WithCancel(ctx)` pays for two
//     full solves every time.
//
// Probe-style fan-out to distinct peers (one liveness check per backend)
// is the same lexical shape as a hedge; sites whose concurrency is
// per-peer rather than per-request document themselves with
// //parmavet:allow hedgecancel.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var hedgecancelAnalyzer = &Analyzer{
	Name: "hedgecancel",
	Doc:  "goroutines reaching (*http.Client).Do need a cancellable context; >=2 concurrent attempts need a shared context.WithCancel parent",
	Applies: func(pkgPath string) bool {
		return pkgPath == "parma/internal/fleet" ||
			strings.HasSuffix(pkgPath, "parmavet/testdata/src/hedgecancel")
	},
	Run: runHedgecancel,
}

// outboundLaunch is one `go` statement whose spawned work reaches
// (*net/http.Client).Do.
type outboundLaunch struct {
	pos     token.Pos
	looped  bool // spawned inside a for/range: one site, many attempts
	callees []*types.Func
	bgPos   token.Pos // context.Background()/TODO() fed to the attempt, if any
}

func runHedgecancel(pass *Pass) {
	info := pass.Pkg.Info
	memoReach := map[*types.Func]bool{}
	memoDerive := map[*types.Func]bool{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHedgeLaunches(pass, info, fd, memoReach, memoDerive)
		}
	}
}

func checkHedgeLaunches(pass *Pass, info *types.Info, fd *ast.FuncDecl, memoReach, memoDerive map[*types.Func]bool) {
	launches := collectOutboundLaunches(pass, info, fd, memoReach)
	if len(launches) == 0 {
		return
	}
	lexDerives := derivesCancellable(info, fd.Body)
	attempts := 0
	for _, l := range launches {
		attempts++
		if l.looped {
			attempts++
		}
	}
	perLaunchFlagged := false
	for _, l := range launches {
		if l.bgPos != token.NoPos {
			pass.Reportf(l.bgPos, "asynchronous outbound attempt runs on a manufactured context: it detaches from every caller, so a losing hedge can never be cancelled; derive from the request ctx with context.WithCancel")
			perLaunchFlagged = true
			continue
		}
		if !lexDerives && !anyCalleeDerives(pass.Prog, info, l.callees, memoDerive, nil) {
			pass.Reportf(l.pos, "goroutine reaches (*http.Client).Do with no cancellable context anywhere on the path: the attempt dangles until the transport gives up; derive context.WithCancel or WithTimeout before launching")
			perLaunchFlagged = true
		}
	}
	if perLaunchFlagged || attempts < 2 || lexDerives {
		return
	}
	// Every attempt is individually bounded somewhere downstream, but the
	// launcher holds no shared cancel handle: the loser runs to its own
	// deadline even after a winner returned.
	at := launches[len(launches)-1].pos
	for _, l := range launches {
		if l.looped {
			at = l.pos
			break
		}
	}
	pass.Reportf(at, "launches %d concurrent outbound attempts without a cancellable shared parent: per-attempt timeouts cannot reel the loser in when a winner returns; derive hctx, cancel := context.WithCancel(ctx) here and cancel once the first response wins", attempts)
}

// collectOutboundLaunches walks fd's body (crossing func-literal
// boundaries: a goroutine spawned by a closure still belongs to this
// function's concurrency) and returns every go statement reaching
// Client.Do.
func collectOutboundLaunches(pass *Pass, info *types.Info, fd *ast.FuncDecl, memoReach map[*types.Func]bool) []outboundLaunch {
	var launches []outboundLaunch
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if g, ok := n.(*ast.GoStmt); ok {
			if l, outbound := classifyLaunch(pass, info, g, memoReach); outbound {
				l.looped = inLoop(stack)
				launches = append(launches, l)
			}
		}
		stack = append(stack, n)
		return true
	})
	return launches
}

// classifyLaunch resolves every call lexically inside the go statement
// (the spawned expression and, for func literals, the whole body) and
// reports whether any of them is — or transitively reaches — an outbound
// http.Client call.
func classifyLaunch(pass *Pass, info *types.Info, g *ast.GoStmt, memoReach map[*types.Func]bool) (outboundLaunch, bool) {
	l := outboundLaunch{pos: g.Pos()}
	outbound := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil {
			return true
		}
		if isOutboundClientCall(fn) || reachesOutbound(pass.Prog, fn, memoReach, nil) {
			outbound = true
			l.callees = append(l.callees, fn)
			if p := manufacturedCtxArg(info, call); p != token.NoPos {
				l.bgPos = p
			}
		}
		// http.NewRequestWithContext is where the attempt's context is
		// bound, even though the function itself performs no I/O.
		if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "NewRequestWithContext" {
			if p := manufacturedCtxArg(info, call); p != token.NoPos {
				outbound = true
				l.bgPos = p
			}
		}
		return true
	})
	return l, outbound
}

// manufacturedCtxArg reports the position of a context.Background() or
// context.TODO() passed directly as an argument to call, or NoPos.
func manufacturedCtxArg(info *types.Info, call *ast.CallExpr) token.Pos {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := staticCallee(info, inner)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			continue
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			return inner.Pos()
		}
	}
	return token.NoPos
}

// isOutboundClientCall reports whether fn is a request-sending method on
// net/http.Client. Get/Post/Head/PostForm all funnel into Do inside the
// standard library, invisibly to the call graph, so they seed directly.
func isOutboundClientCall(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return false
	}
	switch fn.Name() {
	case "Do", "Get", "Post", "Head", "PostForm":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	return namedTypeIs(t, "net/http", "Client")
}

// reachesOutbound reports whether fn's statically resolved call chain
// hits an outbound client call. Memoized; visiting guards recursion.
func reachesOutbound(prog *Program, fn *types.Func, memo map[*types.Func]bool, visiting map[*types.Func]bool) bool {
	if v, ok := memo[fn]; ok {
		return v
	}
	node := prog.Node(fn)
	if node == nil {
		return false
	}
	if visiting == nil {
		visiting = map[*types.Func]bool{}
	}
	if visiting[fn] {
		return false
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	for _, e := range node.Edges {
		if isOutboundClientCall(e.Callee) || reachesOutbound(prog, e.Callee, memo, visiting) {
			memo[fn] = true
			return true
		}
	}
	memo[fn] = false
	return false
}

// derivesCancellable reports whether body lexically contains
// `_, cancel := context.WithCancel/WithTimeout/WithDeadline(...)` with
// the cancel func kept (a blanked cancel is a handle nobody can pull).
func derivesCancellable(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		switch fn.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline":
		default:
			return true
		}
		if id, okI := as.Lhs[1].(*ast.Ident); okI && id.Name != "_" {
			found = true
		}
		return true
	})
	return found
}

// anyCalleeDerives reports whether any function reachable from callees
// derives a cancellable context in its own body — the "each attempt is
// bounded downstream" exemption for single launches.
func anyCalleeDerives(prog *Program, info *types.Info, callees []*types.Func, memo map[*types.Func]bool, visiting map[*types.Func]bool) bool {
	if visiting == nil {
		visiting = map[*types.Func]bool{}
	}
	for _, fn := range callees {
		if calleeDerives(prog, fn, memo, visiting) {
			return true
		}
	}
	return false
}

func calleeDerives(prog *Program, fn *types.Func, memo map[*types.Func]bool, visiting map[*types.Func]bool) bool {
	if v, ok := memo[fn]; ok {
		return v
	}
	node := prog.Node(fn)
	if node == nil {
		return false
	}
	if visiting[fn] {
		return false
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	if derivesCancellable(node.Pkg.Info, node.Decl.Body) {
		memo[fn] = true
		return true
	}
	for _, e := range node.Edges {
		if calleeDerives(prog, e.Callee, memo, visiting) {
			memo[fn] = true
			return true
		}
	}
	memo[fn] = false
	return false
}

// inLoop reports whether the ancestor stack crosses a for/range statement
// before leaving the enclosing function declaration.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}
