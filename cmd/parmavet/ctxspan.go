package main

// ctxspan: in the request-path packages (serve, solver, mpi) a span started
// with the context-blind obs.StartSpan / obs.StartOn while a
// context.Context parameter is lexically in scope silently forks the work
// out of its trace: the span lands on a fresh track with no parent, so the
// request's tree shows a hole exactly where the latency attribution
// matters. Such calls must go through obs.StartSpanCtx / obs.StartSpanIn
// (or carry the trace explicitly with obs.StartOnTraced). The check is
// lexical and includes enclosing functions: a func literal inherits any
// context parameter of the function it is defined in, because the closure
// can capture it.

import (
	"go/ast"
	"go/types"
	"strings"
)

var ctxspanAnalyzer = &Analyzer{
	Name: "ctxspan",
	Doc:  "no context-blind span starts where a context.Context is in scope; use obs.StartSpanCtx/StartSpanIn",
	Applies: func(pkgPath string) bool {
		switch pkgPath {
		case "parma/internal/serve", "parma/internal/solver", "parma/internal/fleet", mpiPath:
			return true
		}
		// Fixture packages opt in by directory name.
		return strings.Contains(pkgPath, "parmavet/testdata/")
	},
	Run: runCtxspan,
}

func runCtxspan(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// stack holds the ancestors of the node being visited; ast.Inspect
		// signals the post-order pop with a nil node.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if name, blind := blindSpanStart(info, call); blind {
					if ctx := contextInScope(info, stack); ctx != "" {
						pass.Reportf(call.Pos(), "obs.%s ignores %s: the span cannot parent to the request trace; use obs.StartSpanCtx or obs.StartSpanIn, or annotate //parmavet:allow ctxspan with the reason", name, ctx)
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// blindSpanStart matches calls to the context-blind span constructors
// obs.StartSpan and obs.StartOn (StartSpanCtx/StartSpanIn/StartOnTraced
// are the sanctioned context-aware ones).
func blindSpanStart(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return "", false
	}
	switch fn.Name() {
	case "StartSpan", "StartOn":
		return fn.Name(), true
	}
	return "", false
}

// contextInScope reports the nearest named context.Context parameter of any
// enclosing function (FuncDecl or FuncLit) on the ancestor stack, or "" when
// none is reachable. A parameter named _ cannot be threaded from that frame,
// so the search keeps climbing past it.
func contextInScope(info *types.Info, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		if name := ctxParamName(info, ft); name != "" {
			return name
		}
	}
	return ""
}

func ctxParamName(info *types.Info, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !namedTypeIs(t, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return "the in-scope context parameter " + name.Name
			}
		}
	}
	return ""
}
