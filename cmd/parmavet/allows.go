package main

// The -allows mode: instead of running analyzers, inventory every
// `//parmavet:allow` suppression in the loaded packages together with its
// `--`-separated justification. Suppressions are load-bearing — each one
// is a finding the suite would otherwise report — so CI archives the
// inventory as an artifact and the exit status enforces that none goes
// unjustified.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// AllowSite is one //parmavet:allow comment.
type AllowSite struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Analyzers     []string `json:"analyzers"`
	Justification string   `json:"justification"` // empty when the comment has no "--" clause
}

// collectAllows gathers every allow site in pkgs, sorted by
// file/line.
func collectAllows(pkgs []*Package) []AllowSite {
	var sites []AllowSite
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					var names []string
					for _, name := range strings.Split(m[1], ",") {
						names = append(names, strings.TrimSpace(name))
					}
					just := ""
					if _, after, found := strings.Cut(c.Text, "--"); found {
						just = strings.TrimSpace(after)
					}
					pos := pkg.Fset.Position(c.Pos())
					sites = append(sites, AllowSite{
						File:          pos.Filename,
						Line:          pos.Line,
						Analyzers:     names,
						Justification: just,
					})
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].File != sites[j].File {
			return sites[i].File < sites[j].File
		}
		return sites[i].Line < sites[j].Line
	})
	return sites
}

// runAllows prints the suppression inventory and returns the exit code:
// 0 when every site carries a justification, 1 otherwise.
func runAllows(pkgs []*Package, jsonOut bool) int {
	sites := collectAllows(pkgs)
	missing := 0
	for _, s := range sites {
		if s.Justification == "" {
			missing++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if sites == nil {
			sites = []AllowSite{}
		}
		if err := enc.Encode(sites); err != nil {
			fmt.Fprintf(os.Stderr, "parmavet: %v\n", err)
			return 2
		}
	} else {
		for _, s := range sites {
			just := s.Justification
			if just == "" {
				just = "(no justification)"
			}
			fmt.Printf("%s:%d: %s: %s\n", s.File, s.Line, strings.Join(s.Analyzers, ","), just)
		}
		fmt.Fprintf(os.Stderr, "parmavet: %d allow site(s), %d without justification\n", len(sites), missing)
	}
	if missing > 0 {
		return 1
	}
	return 0
}
