// Command parma is the command-line frontend of the Parma library: synthetic
// workload generation, topological analysis, parallel equation formation,
// resistance recovery, and anomaly detection.
//
// Usage:
//
//	parma gen       -rows 16 -cols 16 -seed 1 [-anomaly i,j,ri,rj,factor] -r r.txt -z z.txt
//	parma betti     -rows 16 -cols 16
//	parma census    -rows 16 -cols 16
//	parma paths     -n 4
//	parma equations -z z.txt [-strategy pymp] [-workers 8] [-out dir | -stdout]
//	parma solve     -z z.txt -o recovered.txt [-trace t.json] [-metrics m.txt]
//	parma detect    -r recovered.txt [-factor 2.5 | -threshold 11550]
//	parma tracecheck t.json
//
// Every command accepts the observability flags -trace, -metrics,
// -cpuprofile, and -memprofile (see docs/observability.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parma/internal/anomaly"
	"parma/internal/core"
	"parma/internal/gen"
	"parma/internal/grid"
	"parma/internal/hyper"
	"parma/internal/kirchhoff"
	"parma/internal/mpi"
	"parma/internal/obs"
	"parma/internal/parallel"
	"parma/internal/paths"
	"parma/internal/sched"
	"parma/internal/solver"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "betti":
		err = cmdBetti(os.Args[2:])
	case "census":
		err = cmdCensus(os.Args[2:])
	case "paths":
		err = cmdPaths(os.Args[2:])
	case "equations":
		err = cmdEquations(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "hyper":
		err = cmdHyper(os.Args[2:])
	case "tracecheck":
		err = cmdTraceCheck(os.Args[2:])
	case "tracemerge":
		err = cmdTraceMerge(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "parma: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parma: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `parma <command> [flags]

commands:
  gen        synthesize a medium and its measured Z matrix
  betti      print the topological report of an array
  census     print the joint-constraint system size
  paths      print the exponential path census (the §II-C wall)
  equations  form the equation system and write it to disk
  solve      recover the resistance field from measurements
  detect     find anomalous regions in a resistance field
  check      verify a resistance field against measurements (residuals)
  diagnose   topological fault diagnosis of a defective array
  export     render a field as a PGM heatmap or an array as Graphviz DOT
  hyper      censuses of k-dimensional MEA lattices
  tracecheck validate a Chrome trace produced by -trace and summarize it
  tracemerge join per-process Chrome traces into one timeline

every command takes -trace, -metrics, -cpuprofile, -memprofile
run 'parma <command> -h' for per-command flags`)
}

func writeFieldFile(path string, f *grid.Field) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	return grid.WriteField(out, f)
}

func readFieldFile(path string) (*grid.Field, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return grid.ReadField(in)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	rows := fs.Int("rows", 16, "horizontal wires")
	cols := fs.Int("cols", 16, "vertical wires")
	seed := fs.Int64("seed", 1, "generator seed")
	noise := fs.Float64("noise", 0, "relative Gaussian noise std-dev")
	rOut := fs.String("r", "r.txt", "output path for the ground-truth field")
	zOut := fs.String("z", "z.txt", "output path for the measured Z matrix")
	var anomalies anomalyFlags
	fs.Var(&anomalies, "anomaly", "anomaly as i,j,ri,rj,factor (repeatable)")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		cfg := gen.Config{Rows: *rows, Cols: *cols, Seed: *seed, NoiseStdDev: *noise, Anomalies: anomalies}
		r, z, err := gen.Measurements(cfg)
		if err != nil {
			return err
		}
		if err := writeFieldFile(*rOut, r); err != nil {
			return err
		}
		if err := writeFieldFile(*zOut, z); err != nil {
			return err
		}
		fmt.Printf("wrote %s (ground truth, [%.4g, %.4g] kΩ) and %s (measured Z)\n",
			*rOut, r.Min(), r.Max(), *zOut)
		return nil
	})
}

// anomalyFlags parses repeated -anomaly i,j,ri,rj,factor flags.
type anomalyFlags []gen.Anomaly

func (a *anomalyFlags) String() string { return fmt.Sprint(*a) }

func (a *anomalyFlags) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 5 {
		return fmt.Errorf("want i,j,ri,rj,factor, got %q", s)
	}
	vals := make([]float64, 5)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	*a = append(*a, gen.Anomaly{
		CenterI: vals[0], CenterJ: vals[1],
		RadiusI: vals[2], RadiusJ: vals[3], Factor: vals[4],
	})
	return nil
}

func cmdBetti(args []string) error {
	fs := flag.NewFlagSet("betti", flag.ExitOnError)
	rows := fs.Int("rows", 16, "horizontal wires")
	cols := fs.Int("cols", 16, "vertical wires")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		a := grid.New(*rows, *cols)
		rep := core.Analyze(a)
		fmt.Printf("array:        %v\n", a)
		fmt.Printf("simplices:    %d vertices, %d edges (dimension-1 complex)\n", rep.Simplices0, rep.Simplices1)
		fmt.Printf("β₀:           %d (connected components)\n", rep.Betti0)
		fmt.Printf("β₁:           %d (independent Kirchhoff loops)\n", rep.Betti1)
		fmt.Printf("cyclomatic:   %d (Maxwell cross-check)\n", rep.Cyclomatic)
		fmt.Printf("euler χ:      %d\n", rep.Euler)
		fmt.Printf("cycle basis:  %d fundamental cycles\n", rep.CycleBasisSize)
		if err := core.VerifyInvariants(a); err != nil {
			return err
		}
		fmt.Println("invariants:   all §III checks hold")
		return nil
	})
}

func cmdCensus(args []string) error {
	fs := flag.NewFlagSet("census", flag.ExitOnError)
	rows := fs.Int("rows", 16, "horizontal wires")
	cols := fs.Int("cols", 16, "vertical wires")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)
	return ob.Run(func() error { return runCensus(*rows, *cols) })
}

func runCensus(rows, cols int) error {
	c := kirchhoff.SystemCensus(grid.New(rows, cols))
	fmt.Printf("pairs:              %d\n", c.Pairs)
	fmt.Printf("equations per pair: %d\n", c.EquationsPerPair)
	fmt.Printf("equations total:    %d\n", c.Equations)
	fmt.Printf("unknown R:          %d\n", c.UnknownR)
	fmt.Printf("unknown Ua:         %d\n", c.UnknownUa)
	fmt.Printf("unknown Ub:         %d\n", c.UnknownUb)
	fmt.Printf("unknowns total:     %d\n", c.Unknowns)
	return nil
}

func cmdPaths(args []string) error {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	n := fs.Int("n", 4, "array size")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		perPair := paths.CountPairPaths(*n, *n)
		fmt.Printf("simple paths per wire pair:   %d\n", perPair)
		fmt.Printf("paper's n^(n-1) estimate:     %d\n", paths.PaperEstimate(*n)/uint64(*n)/uint64(*n))
		fmt.Printf("storage for all paths:        ~%d bytes\n", paths.StorageBytes(*n))
		census := kirchhoff.SystemCensus(grid.NewSquare(*n))
		fmt.Printf("joint-constraint equations:   %d (polynomial alternative)\n", census.Equations)
		return nil
	})
}

func cmdEquations(args []string) error {
	fs := flag.NewFlagSet("equations", flag.ExitOnError)
	zPath := fs.String("z", "z.txt", "measured Z matrix file")
	strategy := fs.String("strategy", "pymp", "single-thread|parallel|balanced-parallel|work-stealing|pymp")
	workers := fs.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	outDir := fs.String("out", "", "shard directory (default: print summary only)")
	toStdout := fs.Bool("stdout", false, "write equations to stdout instead")
	voltage := fs.Float64("voltage", gen.SourceVoltage, "source voltage")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		z, err := readFieldFile(*zPath)
		if err != nil {
			return err
		}
		a := grid.New(z.Rows(), z.Cols())
		p, err := kirchhoff.NewProblem(a, z, *voltage)
		if err != nil {
			return err
		}
		if *toStdout {
			res := parallel.Serial{}.Run(p, parallel.Options{Collect: true})
			_, err := kirchhoff.WriteSystem(os.Stdout, res.Equations)
			return err
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			bytes, err := parallel.WriteSharded(p, *outDir, *workers, sched.Dynamic, 0)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %d bytes of equations to %s\n", bytes, *outDir)
			return nil
		}
		s, err := strategyByName(*strategy)
		if err != nil {
			return err
		}
		res := s.Run(p, parallel.Options{Workers: *workers})
		fmt.Printf("strategy %s formed %d equations (hash %016x)\n", res.Strategy, res.Count, res.Hash)
		return nil
	})
}

func strategyByName(name string) (parallel.Strategy, error) {
	for _, cand := range parallel.All() {
		if cand.Name() == name {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// cmdSolve runs the full pipeline: joint-constraint formation with a
// parallel strategy (sanity check plus the formation/parallel spans on a
// traced run), a distributed-formation cross-check on a simulated MPI
// world, then Levenberg-Marquardt recovery.
func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	zPath := fs.String("z", "z.txt", "measured Z matrix file")
	out := fs.String("o", "recovered.txt", "output path for the recovered field")
	tol := fs.Float64("tol", 1e-8, "relative residual target")
	strategy := fs.String("strategy", "pymp", "formation strategy for the pre-solve validation pass")
	workers := fs.Int("workers", 0, "formation worker count (0 = GOMAXPROCS)")
	ranks := fs.Int("ranks", 4, "simulated MPI ranks for the formation cross-check (<2 disables)")
	voltage := fs.Float64("voltage", gen.SourceVoltage, "source voltage")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		z, err := readFieldFile(*zPath)
		if err != nil {
			return err
		}
		a := grid.New(z.Rows(), z.Cols())

		p, err := kirchhoff.NewProblem(a, z, *voltage)
		if err != nil {
			return err
		}
		s, err := strategyByName(*strategy)
		if err != nil {
			return err
		}
		formed := s.Run(p, parallel.Options{Workers: *workers})
		fmt.Printf("formed %d equations via %s (hash %016x)\n", formed.Count, formed.Strategy, formed.Hash)

		if *ranks > 1 {
			world := mpi.NewWorld(*ranks, mpi.FDRInfiniBand)
			distTotal := 0
			errs := world.Run(func(c *mpi.Comm) error {
				fr, err := mpi.DistributedFormation(c, p)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					distTotal = fr.TotalEquations
				}
				return nil
			})
			if err := mpi.FirstError(errs); err != nil {
				return err
			}
			if distTotal != formed.Count {
				return fmt.Errorf("distributed formation over %d ranks produced %d equations, strategy produced %d",
					*ranks, distTotal, formed.Count)
			}
			fmt.Printf("distributed formation over %d simulated ranks agrees (%d equations)\n", *ranks, distTotal)
		}

		res, err := solver.Recover(context.Background(), a, z, solver.RecoverOptions{Tol: *tol})
		if err != nil {
			return fmt.Errorf("%w (residual %.3g after %d iterations)", err, res.Residual, res.Iterations)
		}
		if err := writeFieldFile(*out, res.R); err != nil {
			return err
		}
		fmt.Printf("recovered %dx%d field in %d iterations (residual %.3g) -> %s\n",
			res.R.Rows(), res.R.Cols(), res.Iterations, res.Residual, *out)
		return nil
	})
}

// stringListFlag collects a repeatable string flag.
type stringListFlag []string

func (s *stringListFlag) String() string { return strings.Join(*s, ",") }
func (s *stringListFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// cmdTraceCheck validates a Chrome trace written by -trace and prints what
// it contains — the obs-smoke and trace-smoke make targets' verifier. With
// -distributed it additionally checks cross-process span parenting: every
// trace id in the (typically merged) file must form exactly one connected
// tree, i.e. each traced request stayed one request across every rank that
// served it.
func cmdTraceCheck(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ExitOnError)
	distributed := fs.Bool("distributed", false, "validate cross-process span parenting (one connected tree per trace id)")
	var require stringListFlag
	fs.Var(&require, "require", "with -distributed: span name that must appear inside a single tree (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: parma tracecheck [-distributed [-require name]...] <trace.json>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if !*distributed {
		sum, err := obs.ValidateTrace(data)
		if err != nil {
			return err
		}
		fmt.Printf("valid Chrome trace: %d events on %d tracks, %d span names\n",
			sum.Events, sum.Tracks, len(sum.Names))
		for _, n := range sum.Names {
			fmt.Printf("  %s\n", n)
		}
		return nil
	}
	sum, err := obs.ValidateDistributedTrace(data)
	if err != nil {
		return err
	}
	fmt.Printf("valid distributed trace: %d connected tree(s), %d untraced span(s)\n",
		len(sum.Trees), sum.Untraced)
	for _, tree := range sum.Trees {
		fmt.Printf("  trace %s root %s: %d spans across %d process(es)\n",
			tree.Trace, tree.Root, tree.Spans, tree.Pids)
	}
	if len(require) > 0 {
		// At least one tree must contain every required span name: the
		// request's path through the stack is connected, not scattered
		// across disjoint trees.
		best := -1
		for _, tree := range sum.Trees {
			have := 0
			for _, want := range require {
				for _, n := range tree.Names {
					if n == want {
						have++
						break
					}
				}
			}
			if have > best {
				best = have
			}
			if have == len(require) {
				fmt.Printf("  required spans %v all inside trace %s\n", []string(require), tree.Trace)
				return nil
			}
		}
		return fmt.Errorf("no single tree contains all of %v (best tree has %d of %d)",
			[]string(require), best, len(require))
	}
	return nil
}

// cmdTraceMerge joins per-process Chrome trace files (one per MPI rank, or
// daemon + ranks) into one timeline, remapping each input to its own pid so
// the processes render side by side and cross-rank trees validate.
func cmdTraceMerge(args []string) error {
	fs := flag.NewFlagSet("tracemerge", flag.ExitOnError)
	out := fs.String("o", "merged-trace.json", "output file")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: parma tracemerge [-o merged.json] <trace.json>...")
	}
	inputs := make([][]byte, fs.NArg())
	names := make([]string, fs.NArg())
	for i, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		inputs[i] = data
		names[i] = path
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := obs.MergeChromeTraces(f, inputs, names); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("merged %d trace(s) into %s\n", len(inputs), *out)
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	rows := fs.Int("rows", 16, "horizontal wires")
	cols := fs.Int("cols", 16, "vertical wires")
	var dead resistorListFlag
	fs.Var(&dead, "dead", "dead resistor as i,j (repeatable)")
	deadRow := fs.Int("dead-row", -1, "kill every resistor on this horizontal wire")
	deadCol := fs.Int("dead-col", -1, "kill every resistor on this vertical wire")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		return runDiagnose(*rows, *cols, dead, *deadRow, *deadCol)
	})
}

func runDiagnose(rows, cols int, dead resistorListFlag, deadRow, deadCol int) error {
	a := grid.New(rows, cols)
	mask := grid.FullMaskFor(a)
	for _, d := range dead {
		mask.Disable(d[0], d[1])
	}
	if deadRow >= 0 {
		mask.DisableWire(true, deadRow)
	}
	if deadCol >= 0 {
		mask.DisableWire(false, deadCol)
	}
	rep := core.Diagnose(a, mask)
	fmt.Printf("missing resistors: %d of %d\n", rep.MissingResistors, a.Resistors())
	fmt.Printf("components (β₀):   %d\n", rep.Betti0)
	fmt.Printf("loops (β₁):        %d (%d lost to defects)\n", rep.Betti1, rep.LostLoops)
	if len(rep.IsolatedWires) == 0 {
		fmt.Println("dead electrodes:   none")
	} else {
		for _, w := range rep.IsolatedWires {
			if w.Horizontal {
				fmt.Printf("dead electrode:    horizontal wire %s\n", grid.HorizontalLabel(w.Index))
			} else {
				fmt.Printf("dead electrode:    vertical wire %s\n", grid.VerticalLabel(w.Index))
			}
		}
	}
	if rep.FullyFunctional {
		fmt.Println("verdict:           fully functional")
	} else if rep.Betti0 > 1 {
		fmt.Println("verdict:           device PARTITIONED — some pairs unmeasurable")
	} else {
		fmt.Println("verdict:           degraded but fully measurable")
	}
	return nil
}

// resistorListFlag parses repeated -dead i,j flags.
type resistorListFlag [][2]int

func (r *resistorListFlag) String() string { return fmt.Sprint(*r) }

func (r *resistorListFlag) Set(s string) error {
	var i, j int
	if _, err := fmt.Sscanf(s, "%d,%d", &i, &j); err != nil {
		return fmt.Errorf("want i,j, got %q", s)
	}
	*r = append(*r, [2]int{i, j})
	return nil
}

func cmdHyper(args []string) error {
	fs := flag.NewFlagSet("hyper", flag.ExitOnError)
	dims := fs.String("dims", "10,10,10", "comma-separated lattice extents")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error { return runHyper(*dims) })
}

func runHyper(dims string) error {
	var extents []int
	for _, part := range strings.Split(dims, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -dims: %v", err)
		}
		extents = append(extents, v)
	}
	l := hyper.NewLattice(extents...)
	fmt.Printf("%d-dimensional MEA lattice %v\n", l.K(), l.Dims())
	fmt.Printf("points (resistors):   %d\n", l.Points())
	fmt.Printf("edges:                %d\n", l.Edges())
	fmt.Printf("unit cells (n-1)^k:   %d  (the paper's parallel work units)\n", l.UnitCells())
	fmt.Printf("cycle rank β₁:        %d\n", l.CycleRank())
	c := l.TheoreticalComplexity()
	fmt.Printf("complexity:           O(n^%d) sequential / %d units -> O(n^%d) parallel\n",
		c.SeqExponent, c.ParallelUnits, c.ParExponent)
	if l.K() == 2 {
		fmt.Println("note: in 2D, unit cells and cycle rank coincide exactly")
	} else if l.UnitCells() != l.CycleRank() {
		fmt.Println("note: beyond 2D the graph cycle space exceeds the unit-cell count")
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	rPath := fs.String("r", "", "field file to render as a PGM heatmap")
	rows := fs.Int("rows", 0, "with -graph: horizontal wires")
	cols := fs.Int("cols", 0, "with -graph: vertical wires")
	graph := fs.String("graph", "", "render an array graph instead: joint or wire")
	out := fs.String("o", "", "output path (default stdout)")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		var dst *os.File = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			dst = f
		}
		if *graph != "" {
			if *rows < 1 || *cols < 1 {
				return fmt.Errorf("export -graph needs -rows and -cols")
			}
			a := grid.New(*rows, *cols)
			switch *graph {
			case "joint":
				return a.JointGraph().WriteDOT(dst, fmt.Sprintf("mea_%dx%d_joints", *rows, *cols))
			case "wire":
				return a.WireGraph().WriteDOT(dst, fmt.Sprintf("mea_%dx%d_wires", *rows, *cols))
			default:
				return fmt.Errorf("unknown graph kind %q (want joint or wire)", *graph)
			}
		}
		if *rPath == "" {
			return fmt.Errorf("export needs -r <field> or -graph joint|wire")
		}
		f, err := readFieldFile(*rPath)
		if err != nil {
			return err
		}
		return grid.WritePGM(dst, f)
	})
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	zPath := fs.String("z", "z.txt", "measured Z matrix file")
	rPath := fs.String("r", "recovered.txt", "candidate resistance field file")
	voltage := fs.Float64("voltage", gen.SourceVoltage, "source voltage")
	tol := fs.Float64("tol", 1e-6, "acceptable max relative residual")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		z, err := readFieldFile(*zPath)
		if err != nil {
			return err
		}
		r, err := readFieldFile(*rPath)
		if err != nil {
			return err
		}
		a := grid.New(z.Rows(), z.Cols())
		p, err := kirchhoff.NewProblem(a, z, *voltage)
		if err != nil {
			return err
		}
		st, err := kirchhoff.GroundTruthState(a, r, *voltage)
		if err != nil {
			return err
		}
		eqs := p.FormAll()
		worst := 0.0
		for _, e := range eqs {
			scale := *voltage / z.At(e.PairI, e.PairJ)
			if rel := e.Residual(st) / scale; rel > worst || -rel > worst {
				if rel < 0 {
					rel = -rel
				}
				worst = rel
			}
		}
		fmt.Printf("checked %d equations: max relative residual %.3e\n", len(eqs), worst)
		if worst > *tol {
			return fmt.Errorf("field does not satisfy the measurements (residual %.3e > %.3e)", worst, *tol)
		}
		fmt.Println("field is consistent with the measurements")
		return nil
	})
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	rPath := fs.String("r", "recovered.txt", "resistance field file")
	factor := fs.Float64("factor", 2.5, "relative threshold over the median")
	threshold := fs.Float64("threshold", 0, "absolute threshold (overrides -factor)")
	minSize := fs.Int("min-size", 1, "minimum region size")
	ob := obs.AddCLIFlags(fs)
	fs.Parse(args)

	return ob.Run(func() error {
		f, err := readFieldFile(*rPath)
		if err != nil {
			return err
		}
		det := anomaly.Detect(f, anomaly.Options{
			Factor: *factor, AbsoluteThreshold: *threshold, MinRegionSize: *minSize,
		})
		fmt.Printf("threshold %.4g kΩ, %d region(s)\n", det.Threshold, len(det.Regions))
		for i, reg := range det.Regions {
			fmt.Printf("  region %d: %d cells, peak %.4g kΩ, seed (%d,%d)\n",
				i, reg.Size(), reg.PeakValue, reg.Cells[0][0], reg.Cells[0][1])
		}
		return nil
	})
}
