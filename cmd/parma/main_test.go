package main

import "testing"

func TestAnomalyFlagsParse(t *testing.T) {
	var a anomalyFlags
	if err := a.Set("4,5,1.5,2.5,6"); err != nil {
		t.Fatal(err)
	}
	if err := a.Set(" 1 , 2 , 3 , 4 , 5 "); err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 {
		t.Fatalf("parsed %d anomalies", len(a))
	}
	if a[0].CenterI != 4 || a[0].CenterJ != 5 || a[0].RadiusI != 1.5 || a[0].RadiusJ != 2.5 || a[0].Factor != 6 {
		t.Fatalf("first anomaly = %+v", a[0])
	}
	if a.String() == "" {
		t.Fatal("String is empty")
	}
}

func TestAnomalyFlagsRejectsBadInput(t *testing.T) {
	var a anomalyFlags
	for _, in := range []string{"", "1,2,3,4", "1,2,3,4,5,6", "a,b,c,d,e"} {
		if err := a.Set(in); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
