package main

// The `recover` subcommand benchmarks the recovery hot path end to end —
// forward measurement, then Levenberg-Marquardt recovery — once with the
// kernel pool pinned to one worker (the serial reference) and once at full
// width, and emits a machine-readable JSON report. The two runs must agree
// bit-for-bit on iterations and to 1e-10 on the converged residual: the
// kernels promise parallelism changes wall-clock only. Reports seed the
// BENCH trajectory (BENCH_recover.json at the repo root holds the committed
// baseline); `make bench-smoke` runs a small size in CI.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"parma/internal/circuit"
	"parma/internal/gen"
	"parma/internal/grid"
	"parma/internal/mat"
	"parma/internal/solver"
)

// recoverReport is the machine-readable result of one recover benchmark.
// A trajectory file (BENCH_recover.json) is a JSON array of these, oldest
// first; -json appends to it so successive PRs accumulate a history.
type recoverReport struct {
	Schema string `json:"schema"`
	// Label identifies the measured tree in a trajectory ("pre kernel
	// layer", a commit, a machine note).
	Label      string  `json:"label,omitempty"`
	Size       int     `json:"size"`
	Seed       int64   `json:"seed"`
	Tol        float64 `json:"tol"`
	MaxIter    int     `json:"max_iter"`
	Runs       int     `json:"runs"`
	GoMaxProcs int     `json:"gomaxprocs"`
	// SerialMS and ParallelMS are best-of-Runs wall-clock times for one full
	// recovery with the kernel pool at width 1 and at full width.
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// MeasureSerialMS and MeasureParallelMS time the forward MeasureAll
	// sweep the same way.
	MeasureSerialMS   float64 `json:"measure_serial_ms"`
	MeasureParallelMS float64 `json:"measure_parallel_ms"`
	Iterations        int     `json:"iterations"`
	Residual          float64 `json:"residual"`
	// ResidualDelta is |serial − parallel| converged residual; the kernels
	// are deterministic, so anything above 1e-10 fails the run.
	ResidualDelta float64 `json:"residual_delta"`
	// Method is the Gauss-Newton backend that ran ("dense" or "sparse").
	// Absent on records predating the sparse path (those ran dense).
	Method string `json:"method,omitempty"`
	// CGIters is the cumulative inner CG iteration count of the parallel
	// run (sparse method only).
	CGIters int `json:"cg_iters,omitempty"`
	// NNZ is the sparse Jacobian's stored entry count (sparse method only).
	NNZ int `json:"nnz,omitempty"`
}

const recoverSchema = "parma-bench/recover/v1"

func runRecoverBench(args []string) int {
	fs := flag.NewFlagSet("parma-bench recover", flag.ContinueOnError)
	size := fs.Int("size", 16, "array side length (size x size recovery)")
	sizes := fs.String("sizes", "", "comma-separated n-sweep (e.g. 16,32,64,128): one record per size and method; overrides -size and -method")
	seed := fs.Int64("seed", 2022, "workload seed")
	tol := fs.Float64("tol", 1e-8, "recovery residual tolerance")
	maxIter := fs.Int("maxiter", 60, "recovery iteration cap")
	runs := fs.Int("runs", 3, "timed repetitions; best is reported")
	method := fs.String("method", "auto", "Gauss-Newton backend: auto, dense, or sparse")
	denseMax := fs.Int("dense-max", 64, "largest size the sweep runs the dense method at (O(n⁶) per iteration; larger sizes go sparse-only)")
	label := fs.String("label", "", "label recorded with the report in a trajectory file")
	jsonPath := fs.String("json", "", "append the report to this trajectory file (default: print to stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	m, err := solver.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	if *sizes != "" {
		return runRecoverSweep(*sizes, *seed, *tol, *maxIter, *runs, *denseMax, *label, *jsonPath)
	}
	rep, err := recoverBench(*size, *seed, *tol, *maxIter, *runs, m)
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	if *jsonPath != "" {
		if err := appendTrajectory(*jsonPath, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("recover bench: size=%d method=%s serial=%.1fms parallel=%.1fms speedup=%.2fx (report: %s)\n",
			rep.Size, rep.Method, rep.SerialMS, rep.ParallelMS, rep.Speedup, *jsonPath)
		return 0
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
	return 0
}

// runRecoverSweep is the n-sweep behind the dense/sparse crossover table:
// at every size it runs the sparse backend, and the dense backend up to
// denseMax (dense cost grows as n⁶ per iteration, so large sizes are
// unmeasurable dense — the cap keeps the sweep finite). When both backends
// run at a size their converged residuals must both meet the tolerance:
// the sparse path's pruning may change the trajectory but never where it
// lands. Each report appends to the trajectory file individually, so a
// sweep interrupted midway still leaves its finished records.
func runRecoverSweep(sizes string, seed int64, tol float64, maxIter, runs, denseMax int, label, jsonPath string) int {
	sizeList, err := parseSizes(sizes)
	if err != nil {
		fatal(err)
	}
	for _, size := range sizeList {
		methods := []solver.Method{solver.MethodSparse}
		if size <= denseMax {
			methods = append([]solver.Method{solver.MethodDense}, methods...)
		} else {
			fmt.Printf("recover sweep: size=%d dense skipped (above -dense-max %d)\n", size, denseMax)
		}
		var got []recoverReport
		for _, m := range methods {
			rep, err := recoverBench(size, seed, tol, maxIter, runs, m)
			if err != nil {
				fatal(fmt.Errorf("size %d method %s: %w", size, m, err))
			}
			rep.Label = label
			got = append(got, rep)
			if jsonPath != "" {
				if err := appendTrajectory(jsonPath, rep); err != nil {
					fatal(err)
				}
			}
			fmt.Printf("recover sweep: size=%d method=%s parallel=%.1fms iters=%d residual=%.3g cg_iters=%d nnz=%d\n",
				rep.Size, rep.Method, rep.ParallelMS, rep.Iterations, rep.Residual, rep.CGIters, rep.NNZ)
		}
		if len(got) == 2 {
			d, s := got[0], got[1]
			if d.Residual > tol || s.Residual > tol {
				fatal(fmt.Errorf("size %d: residual parity failed: dense %g, sparse %g (tol %g)",
					size, d.Residual, s.Residual, tol))
			}
			fmt.Printf("recover sweep: size=%d parity ok (dense %.3g, sparse %.3g); sparse/dense time %.2fx\n",
				size, d.Residual, s.Residual, d.ParallelMS/s.ParallelMS)
		}
	}
	return 0
}

// parseSizes parses the -sizes list.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid -sizes entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sizes is empty")
	}
	return out, nil
}

// appendTrajectory appends rep to the JSON array at path, creating the file
// when absent. The trajectory stays oldest-first so diffs read as history.
func appendTrajectory(path string, rep recoverReport) error {
	var traj []recoverReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &traj); err != nil {
			return fmt.Errorf("existing trajectory %s does not parse (fix or remove it): %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	traj = append(traj, rep)
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func recoverBench(size int, seed int64, tol float64, maxIter, runs int, method solver.Method) (recoverReport, error) {
	if runs < 1 {
		runs = 1
	}
	a := grid.NewSquare(size)
	truth := gen.Medium(gen.Config{Rows: size, Cols: size, Seed: seed,
		Anomalies: []gen.Anomaly{{
			CenterI: float64(size) / 3, CenterJ: float64(size) / 3,
			RadiusI: float64(size) / 5, RadiusJ: float64(size) / 5, Factor: 4,
		}}})
	z, err := circuit.MeasureAll(a, truth)
	if err != nil {
		return recoverReport{}, err
	}
	opts := solver.RecoverOptions{Tol: tol, MaxIter: maxIter, Method: method}

	timeAt := func(workers int) (time.Duration, time.Duration, solver.RecoverResult, error) {
		prev := mat.Parallelism(workers)
		defer mat.Parallelism(prev)
		bestMeasure, bestRecover := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		var res solver.RecoverResult
		for r := 0; r < runs; r++ {
			t0 := time.Now()
			if _, err := circuit.MeasureAll(a, truth); err != nil {
				return 0, 0, res, err
			}
			if d := time.Since(t0); d < bestMeasure {
				bestMeasure = d
			}
			t0 = time.Now()
			got, err := solver.Recover(context.Background(), a, z, opts)
			if err != nil {
				return 0, 0, res, err
			}
			if d := time.Since(t0); d < bestRecover {
				bestRecover = d
			}
			res = got
		}
		return bestMeasure, bestRecover, res, nil
	}

	serialMeasure, serialRecover, serialRes, err := timeAt(1)
	if err != nil {
		return recoverReport{}, fmt.Errorf("serial run: %w", err)
	}
	parMeasure, parRecover, parRes, err := timeAt(0) // 0 = GOMAXPROCS
	if err != nil {
		return recoverReport{}, fmt.Errorf("parallel run: %w", err)
	}

	delta := math.Abs(serialRes.Residual - parRes.Residual)
	if delta > 1e-10 {
		return recoverReport{}, fmt.Errorf("serial and parallel residuals differ by %g (> 1e-10): %g vs %g",
			delta, serialRes.Residual, parRes.Residual)
	}
	if serialRes.Iterations != parRes.Iterations {
		return recoverReport{}, fmt.Errorf("serial and parallel iteration counts differ: %d vs %d",
			serialRes.Iterations, parRes.Iterations)
	}

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return recoverReport{
		Schema:            recoverSchema,
		Size:              size,
		Seed:              seed,
		Tol:               tol,
		MaxIter:           maxIter,
		Runs:              runs,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		SerialMS:          ms(serialRecover),
		ParallelMS:        ms(parRecover),
		Speedup:           float64(serialRecover) / float64(parRecover),
		MeasureSerialMS:   ms(serialMeasure),
		MeasureParallelMS: ms(parMeasure),
		Iterations:        parRes.Iterations,
		Residual:          parRes.Residual,
		ResidualDelta:     delta,
		Method:            parRes.Method.String(),
		CGIters:           parRes.CGIterations,
		NNZ:               parRes.NNZ,
	}, nil
}
