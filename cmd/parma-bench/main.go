// Command parma-bench regenerates the paper's evaluation figures as data
// series (text tables or CSV). Each figure corresponds to one driver in
// internal/experiments; see EXPERIMENTS.md for the expected shapes.
//
// Usage:
//
//	parma-bench -figure 6                      # one figure, default sweep
//	parma-bench -figure all -csv               # everything, CSV output
//	parma-bench -figure 7 -sizes 10,20,50 -workers 2,4,8
//	parma-bench -figure 6 -profile native      # Go-native cost profile
//	parma-bench -figure 6 -json report.json    # machine-readable results
//
// The `recover` subcommand benchmarks the recovery hot path (serial kernel
// pool vs full width) and emits a machine-readable JSON report — the BENCH
// trajectory format (see BENCH_recover.json and docs/performance.md):
//
//	parma-bench recover -size 16 -json BENCH_recover.json
//
// The observability flags -trace, -metrics, -cpuprofile, -memprofile apply
// here too; with -json the report additionally embeds span rollups and
// metric snapshots from the traced run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parma/internal/experiments"
	"parma/internal/metrics"
	"parma/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "recover" {
		os.Exit(runRecoverBench(os.Args[2:]))
	}
	figure := flag.String("figure", "all", "figure to regenerate: 6, 7, 8, 9, 10, or all")
	sizes := flag.String("sizes", "", "comma-separated array sizes (default: paper anchors)")
	workers := flag.String("workers", "", "comma-separated worker counts")
	ranks := flag.String("ranks", "", "comma-separated MPI rank counts")
	seed := flag.Int64("seed", 2022, "workload seed")
	profile := flag.String("profile", "python", "execution profile: python (paper-calibrated) or native")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonPath := flag.String("json", "", "write a machine-readable JSON report to this file")
	ob := obs.AddCLIFlags(flag.CommandLine)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed}
	var err error
	if cfg.Sizes, err = parseInts(*sizes); err != nil {
		fatal(err)
	}
	if cfg.Workers, err = parseInts(*workers); err != nil {
		fatal(err)
	}
	if cfg.Ranks, err = parseInts(*ranks); err != nil {
		fatal(err)
	}
	switch *profile {
	case "python":
		cfg.Profile = experiments.PythonProfile
	case "native":
		cfg.Profile = experiments.NativeProfile
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}

	type driver struct {
		name string
		desc string
		run  func(experiments.Config) (*metrics.Table, error)
	}
	drivers := map[string]driver{
		"6":  {"Figure 6", "formation time: Parallel vs Balanced Parallel vs PyMP", experiments.Figure6},
		"7":  {"Figure 7", "PyMP compute time across parallelism k", experiments.Figure7},
		"8":  {"Figure 8", "memory usage distribution while forming and retaining the system", experiments.Figure8},
		"9":  {"Figure 9", "end-to-end time including writing equations to disk", experiments.Figure9},
		"10": {"Figure 10", "MPI strong scaling across rank counts", experiments.Figure10},
	}
	drivers["hetero"] = driver{
		"Heterogeneous cluster", "uniform vs speed-weighted partitioning (future-work extension)",
		func(cfg experiments.Config) (*metrics.Table, error) {
			hc := experiments.HeterogeneousConfig{Seed: cfg.Seed, Ranks: cfg.Ranks}
			if len(cfg.Sizes) > 0 {
				hc.N = cfg.Sizes[len(cfg.Sizes)-1]
			}
			return experiments.Heterogeneous(hc)
		},
	}
	drivers["noise"] = driver{
		"Noise robustness", "recovery error and detection F1 vs measurement noise (extension)",
		func(cfg experiments.Config) (*metrics.Table, error) {
			nc := experiments.NoiseConfig{Seed: cfg.Seed}
			if len(cfg.Sizes) > 0 {
				nc.N = cfg.Sizes[len(cfg.Sizes)-1]
			}
			return experiments.NoiseSweep(nc)
		},
	}
	drivers["inverse"] = driver{
		"Inverse methods", "LM recovery vs Landweber/LBP/Tikhonov baselines (§I ill-posedness)",
		func(cfg experiments.Config) (*metrics.Table, error) {
			ic := experiments.InverseConfig{Seed: cfg.Seed}
			if len(cfg.Sizes) > 0 {
				ic.N = cfg.Sizes[len(cfg.Sizes)-1]
			}
			return experiments.InverseComparison(ic)
		},
	}
	drivers["chunks"] = driver{
		"Chunk-size ablation", "fine-grained makespan vs chunk size (handout overhead vs tail balance)",
		func(cfg experiments.Config) (*metrics.Table, error) {
			cc := experiments.ChunkSweepConfig{Seed: cfg.Seed, Profile: cfg.Profile}
			if len(cfg.Sizes) > 0 {
				cc.N = cfg.Sizes[len(cfg.Sizes)-1]
			}
			if len(cfg.Workers) > 0 {
				cc.Workers = cfg.Workers[len(cfg.Workers)-1]
			}
			return experiments.ChunkSweep(cc)
		},
	}
	order := []string{"6", "7", "8", "9", "10"}

	selected := order
	if *figure != "all" {
		if _, ok := drivers[*figure]; !ok {
			fatal(fmt.Errorf("unknown figure %q (want 6..10, hetero, noise, inverse, chunks, or all)", *figure))
		}
		selected = []string{*figure}
	}
	err = ob.Run(func() error {
		var figures []figureReport
		for _, key := range selected {
			d := drivers[key]
			fmt.Printf("== %s: %s ==\n", d.name, d.desc)
			tbl, err := d.run(cfg)
			if err != nil {
				return err
			}
			if *csv {
				err = tbl.WriteCSV(os.Stdout)
			} else {
				err = tbl.Write(os.Stdout)
			}
			if err != nil {
				return err
			}
			fmt.Println()
			figures = append(figures, figureReport{
				Key: key, Name: d.name, Description: d.desc,
				Header: tbl.Header(), Rows: tbl.Rows(),
			})
		}
		if *jsonPath != "" {
			return writeJSONReport(*jsonPath, cfg, *figure, *profile, figures)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
}

// figureReport is one figure's table in the -json report.
type figureReport struct {
	Key         string     `json:"key"`
	Name        string     `json:"name"`
	Description string     `json:"description"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
}

// jsonReport is the -json output schema: run configuration, every figure's
// series, and (when the run was traced) span rollups and metric snapshots.
type jsonReport struct {
	Schema  string               `json:"schema"`
	Figure  string               `json:"figure"`
	Seed    int64                `json:"seed"`
	Profile string               `json:"profile"`
	Sizes   []int                `json:"sizes,omitempty"`
	Workers []int                `json:"workers,omitempty"`
	Ranks   []int                `json:"ranks,omitempty"`
	Figures []figureReport       `json:"figures"`
	Spans   []obs.Rollup         `json:"spans,omitempty"`
	Metrics []obs.MetricSnapshot `json:"metrics,omitempty"`
}

func writeJSONReport(path string, cfg experiments.Config, figure, profile string, figures []figureReport) error {
	rep := jsonReport{
		Schema:  "parma-bench/v1",
		Figure:  figure,
		Seed:    cfg.Seed,
		Profile: profile,
		Sizes:   cfg.Sizes,
		Workers: cfg.Workers,
		Ranks:   cfg.Ranks,
		Figures: figures,
	}
	if rec := obs.Active(); rec != nil {
		rep.Spans = rec.Rollups()
		rep.Metrics = rec.Registry().Snapshot()
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "parma-bench: %v\n", err)
	os.Exit(1)
}
