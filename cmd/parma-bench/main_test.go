package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"parma/internal/solver"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 10, 20 ,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("parseInts = %v", got)
	}
	empty, err := parseInts("  ")
	if err != nil || empty != nil {
		t.Fatalf("blank input: %v, %v", empty, err)
	}
	if _, err := parseInts("1,x,3"); err == nil {
		t.Fatal("bad list accepted")
	}
}

// TestRecoverBenchReport runs the recover benchmark at a tiny size and checks
// the report: sane fields, the determinism invariants the tool enforces, and
// that appendTrajectory round-trips through a file twice.
func TestRecoverBenchReport(t *testing.T) {
	rep, err := recoverBench(5, 7, 1e-8, 40, 1, solver.MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != recoverSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, recoverSchema)
	}
	if rep.Method != "dense" {
		t.Fatalf("method = %q, want %q (auto resolves dense at 5x5)", rep.Method, "dense")
	}
	if rep.SerialMS <= 0 || rep.ParallelMS <= 0 {
		t.Fatalf("non-positive timings: serial=%v parallel=%v", rep.SerialMS, rep.ParallelMS)
	}
	if rep.Iterations <= 0 || rep.Residual > 1e-8 {
		t.Fatalf("recovery did not converge: iters=%d residual=%g", rep.Iterations, rep.Residual)
	}
	if rep.ResidualDelta > 1e-10 {
		t.Fatalf("serial/parallel residual delta %g exceeds 1e-10", rep.ResidualDelta)
	}

	path := filepath.Join(t.TempDir(), "traj.json")
	rep.Label = "first"
	if err := appendTrajectory(path, rep); err != nil {
		t.Fatal(err)
	}
	rep.Label = "second"
	if err := appendTrajectory(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj []recoverReport
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("trajectory does not parse: %v", err)
	}
	if len(traj) != 2 || traj[0].Label != "first" || traj[1].Label != "second" {
		t.Fatalf("trajectory = %d entries, labels %q/%q", len(traj), traj[0].Label, traj[len(traj)-1].Label)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendTrajectory(path, rep); err == nil {
		t.Fatal("appendTrajectory accepted a corrupt trajectory file")
	}
}

// TestRecoverBenchSparse forces the sparse backend at a tiny size and checks
// the sparse-only report fields are populated.
func TestRecoverBenchSparse(t *testing.T) {
	rep, err := recoverBench(5, 7, 1e-8, 40, 1, solver.MethodSparse)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "sparse" {
		t.Fatalf("method = %q, want %q", rep.Method, "sparse")
	}
	if rep.CGIters <= 0 || rep.NNZ <= 0 {
		t.Fatalf("sparse counters missing: cg_iters=%d nnz=%d", rep.CGIters, rep.NNZ)
	}
	if rep.Residual > 1e-8 {
		t.Fatalf("sparse recovery did not converge: residual=%g", rep.Residual)
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("16, 32 ,64")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 16 || got[2] != 64 {
		t.Fatalf("parseSizes = %v", got)
	}
	for _, bad := range []string{"", "  ,  ", "16,x", "1,16"} {
		if _, err := parseSizes(bad); err == nil {
			t.Fatalf("parseSizes(%q) accepted", bad)
		}
	}
}
