package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 10, 20 ,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("parseInts = %v", got)
	}
	empty, err := parseInts("  ")
	if err != nil || empty != nil {
		t.Fatalf("blank input: %v, %v", empty, err)
	}
	if _, err := parseInts("1,x,3"); err == nil {
		t.Fatal("bad list accepted")
	}
}
