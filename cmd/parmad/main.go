// Command parmad serves Parma's MEA recovery and forward measurement as a
// batched HTTP/JSON daemon. It fronts internal/serve: an admission queue
// with bounded depth, a dispatcher that batches compatible requests, a
// worker pool with per-request deadlines, and an LRU cache amortizing
// Laplacian factorizations and warm-start estimates across requests.
//
// Endpoints:
//
//	POST /v1/recover      measured Z field -> recovered R field
//	POST /v1/measure      R field -> simulated Z field
//	GET  /healthz         liveness + drain state
//	GET  /metrics         Prometheus text exposition
//	GET  /debug/pprof/*   runtime profiles (with -pprof)
//
// SIGINT/SIGTERM triggers a graceful drain: admission stops, every already
// admitted request finishes, then the HTTP listener shuts down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parma/internal/obs"
	"parma/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "parmad:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("parmad", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
	workers := fs.Int("workers", 0, "compute worker pool size (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 64, "max admitted-but-unfinished requests before 429")
	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "how long a batch stays open for same-key requests")
	maxBatch := fs.Int("max-batch", 8, "flush a batch early at this size")
	cacheEntries := fs.Int("cache-entries", 128, "factorization/warm-start LRU capacity")
	deadline := fs.Duration("deadline", 30*time.Second, "default per-request deadline")
	maxDim := fs.Int("max-dim", 64, "reject geometries larger than this per side")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint attached to shed (429/503) responses")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive saturation failures that open a geometry's circuit breaker")
	breakerOpenFor := fs.Duration("breaker-open-for", 5*time.Second, "how long an open breaker sheds before a half-open probe")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/*")
	compactEvery := fs.Duration("compact-interval", 10*time.Second, "fold span events into rollups on this interval (bounds memory)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	sloSpec := fs.String("slo", "", `latency SLO, e.g. "p99=250ms": exports per-endpoint burn-rate gauges at /metrics`)
	traceFile := fs.String("trace", "", "write a Chrome trace of recorded spans to this file on shutdown")
	validateRanks := fs.Int("validate-ranks", 0, "cross-check each recovery's equation census across this many in-process MPI ranks (0 = off)")
	injectDelay := fs.Duration("inject-delay", 0, "testing: sleep this long before serving each POST /v1/* request (health probes unaffected)")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		return err
	}
	obs.SetLogger(logger)

	var slo *obs.SLOMonitor
	if *sloSpec != "" {
		obj, err := obs.ParseSLO(*sloSpec)
		if err != nil {
			return err
		}
		slo = obs.NewSLOMonitor(obj)
	}

	rec := obs.NewRecorder()
	obs.Enable(rec)
	defer obs.Disable()
	sampler := obs.NewRuntimeSampler(rec, time.Second)
	sampler.Start()
	defer sampler.Stop()

	// Periodic compaction keeps the span buffer bounded for a long-running
	// daemon while preserving the cumulative Prometheus counters.
	compactDone := make(chan struct{})
	defer close(compactDone)
	go func() {
		tick := time.NewTicker(*compactEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				rec.CompactSpans()
			case <-compactDone:
				return
			}
		}
	}()

	srv := serve.NewServer(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		CacheEntries:     *cacheEntries,
		DefaultDeadline:  *deadline,
		MaxDim:           *maxDim,
		RetryAfter:       *retryAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerOpenFor:   *breakerOpenFor,
		EnablePprof:      *pprofOn,
		Recorder:         rec,
		SLO:              slo,
		ValidateRanks:    *validateRanks,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	handler := srv.Handler()
	if *injectDelay > 0 {
		// Fault-injection middleware for fleet testing: slow the compute
		// endpoints so hedging has a tail to cut, but leave /healthz fast so
		// the router keeps this worker routable instead of ejecting it.
		logger.Info("injecting latency", "delay", (*injectDelay).String())
		inner := handler
		delay := *injectDelay
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/") {
				select {
				case <-time.After(delay):
				case <-r.Context().Done():
					return
				}
			}
			inner.ServeHTTP(w, r)
		})
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	logger.Info("listening", "addr", bound, "workers", *workers, "queue", *queueDepth,
		"max_batch", *maxBatch, "batch_window", (*batchWindow).String(), "cache", *cacheEntries,
		"slo", *sloSpec, "validate_ranks", *validateRanks)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admission, let every admitted request finish,
	// then shut the listener down so in-flight responses are delivered.
	logger.Info("draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		_ = httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("creating -trace file: %w", err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing -trace file: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		logger.Info("trace written", "file", *traceFile)
	}
	hits, misses := srv.Cache().Stats()
	logger.Info("drained cleanly", "cache_hits", hits, "cache_misses", misses)
	return nil
}
