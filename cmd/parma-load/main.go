// Command parma-load drives open-loop load against a running parmad and
// reports latency, throughput, and cache effectiveness. It synthesizes a
// mixed-geometry workload (ground-truth fields plus their forward-model
// measurements), fires requests at a target QPS without waiting for
// responses between sends, and aggregates per-request results:
//
//	parmad -addr 127.0.0.1:8321 &
//	parma-load -addr 127.0.0.1:8321 -n 200 -qps 100 -geoms 4x4,5x5,6x6
//
// Repeatable -target flags spread load over several addresses (workers or
// routers); when a parma-router answers, its X-Parma-Backend header feeds
// the per-backend response distribution in the report, and
// -expect-affinity asserts each geometry stays pinned to one worker.
//
// The exit status is the assertion surface for smoke tests: nonzero when
// any request fails or when -min-cache-hit-rate (or -expect-affinity, or
// the other -expect-* flags) is not met.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"parma"
	"parma/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "parma-load:", err)
		os.Exit(1)
	}
}

// workItem is one prepared request body.
type workItem struct {
	path string
	body []byte
	geom string
}

// result is one completed request.
type result struct {
	status     int
	latency    time.Duration
	cache      string
	batch      int
	degraded   bool
	retryAfter string
	timings    *serve.Timings
	traceID    string
	backend    string
	hedged     bool
	err        error
}

func run(argv []string) error {
	fs := flag.NewFlagSet("parma-load", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "parmad address (host:port); ignored when -target is given")
	var targets []string
	fs.Func("target", "target address (repeatable; comma lists allowed); requests round-robin across targets",
		func(v string) error {
			for _, one := range strings.Split(v, ",") {
				if one = strings.TrimSpace(one); one != "" {
					targets = append(targets, one)
				}
			}
			return nil
		})
	n := fs.Int("n", 200, "total requests to send")
	qps := fs.Float64("qps", 100, "target send rate (requests/second)")
	geoms := fs.String("geoms", "4x4,5x5,6x6", "comma-separated square geometries, e.g. 4x4,6x6")
	seed := fs.Int64("seed", 1, "workload seed")
	measureFrac := fs.Float64("measure-frac", 0.5, "fraction of requests hitting /v1/measure (rest /v1/recover)")
	tol := fs.Float64("tol", 0, "recover tolerance forwarded to the server (0 = server default)")
	deadline := fs.Int64("deadline", 0, "per-request deadline_ms forwarded to the server (0 = server default)")
	minHitRate := fs.Float64("min-cache-hit-rate", -1, "exit 1 when the observed cache hit rate is below this (e.g. 0.5); negative disables")
	checkMetrics := fs.Bool("check-metrics", false, "scrape /metrics afterwards and require batch-size, queue-depth, stage-latency, and RED series")
	checkTimings := fs.Bool("check-timings", false, "require every OK response's timings stages to sum to within 10% (+2ms) of its total_ms")
	checkTraces := fs.Bool("check-traces", false, "require every OK response to carry a trace_id")
	checkSLO := fs.Bool("check-slo", false, "require SLO burn-rate gauges in /metrics (server must run with -slo)")
	expectAffinity := fs.Bool("expect-affinity", false, "exit 1 unless responses span >=2 backends overall while each geometry stays pinned (<=2 backends, majority on one); needs a router setting X-Parma-Backend")
	allowShed := fs.Bool("allow-shed", false, "treat 429/503 sheds as expected backpressure instead of failures (each must carry Retry-After)")
	expectShed := fs.Bool("expect-shed", false, "exit 1 unless at least one request was shed with Retry-After (implies -allow-shed)")
	expectDegraded := fs.Bool("expect-degraded", false, "exit 1 unless at least one request was served degraded from the stale cache")
	hedgeReport := fs.Bool("hedge-report", false, "scrape the router's hedge counters afterwards and exit 1 unless at least one hedge launched (router must run with -hedge-budget > 0)")
	expectPrewarmHit := fs.Bool("expect-prewarm-hit", false, "exit 1 unless the first OK /v1/recover for every geometry (in send order) was a warm-start cache hit — the warm-handoff assertion")
	latencyOut := fs.String("latency-out", "", "write OK-response latency percentiles as JSON to this file (machine-readable, for smoke-test comparisons)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *n <= 0 || *qps <= 0 {
		return fmt.Errorf("-n and -qps must be positive")
	}

	items, err := buildWorkload(*geoms, *seed, *tol, *deadline, *measureFrac, *n)
	if err != nil {
		return err
	}

	if len(targets) == 0 {
		targets = []string{*addr}
	}
	bases := make([]string, len(targets))
	for i, t := range targets {
		if strings.Contains(t, "://") {
			bases[i] = strings.TrimRight(t, "/")
		} else {
			bases[i] = "http://" + t
		}
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	// Open loop: send on the tick regardless of completions, so the server's
	// queue — not the client — absorbs bursts. Multiple -target addresses
	// are rotated per request.
	interval := time.Duration(float64(time.Second) / *qps)
	results := make([]result, len(items))
	var wg sync.WaitGroup
	start := time.Now()
	for i, it := range items {
		if i > 0 {
			time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		}
		wg.Add(1)
		go func(i int, it workItem, base string) {
			defer wg.Done()
			results[i] = fire(client, base, it.path, it.body)
		}(i, it, bases[i%len(bases)])
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(os.Stdout, items, results, elapsed)

	shedOK := *allowShed || *expectShed
	failures, hits, sheds, shedsNoHint, degraded, degradedBad := 0, 0, 0, 0, 0, 0
	badTimings, missingTraces := 0, 0
	for _, r := range results {
		if r.degraded {
			degraded++
			if r.cache != "stale" {
				degradedBad++
			}
		}
		if r.err == nil && r.status == http.StatusOK {
			if r.cache == "hit" {
				hits++
			}
			if *checkTimings && !r.degraded && !timingsAddUp(r.timings) {
				badTimings++
			}
			if *checkTraces && r.traceID == "" {
				missingTraces++
			}
			continue
		}
		if shedOK && (r.status == http.StatusTooManyRequests || r.status == http.StatusServiceUnavailable) {
			if r.retryAfter == "" {
				shedsNoHint++
			} else {
				sheds++
			}
			continue
		}
		failures++
	}
	hitRate := float64(hits) / float64(len(results))
	if *checkMetrics || *checkSLO {
		want := []string{}
		if *checkMetrics {
			want = append(want, "parma_serve_batch_size", "parma_serve_queue_depth",
				"parma_serve_stage_solve_ms", "parma_serve_red_")
		}
		if *checkSLO {
			want = append(want, "parma_slo_objective_ms", "burn_rate_5m", "burn_rate_1h")
		}
		if err := verifyMetrics(client, bases[0], want); err != nil {
			return err
		}
		fmt.Println("metrics: required series present")
	}
	if *expectAffinity {
		if err := checkAffinity(items, results); err != nil {
			return err
		}
		fmt.Println("affinity: per-geometry pinning confirmed")
	}
	if *latencyOut != "" {
		if err := writeLatencyFile(*latencyOut, results); err != nil {
			return err
		}
	}
	if *hedgeReport {
		if err := reportHedging(client, bases[0], results); err != nil {
			return err
		}
	}
	if *expectPrewarmHit {
		if err := checkPrewarmHits(items, results); err != nil {
			return err
		}
		fmt.Println("prewarm: first recover per geometry was a warm-start hit")
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d requests failed", failures, len(results))
	}
	if badTimings > 0 {
		return fmt.Errorf("%d responses had timings stages that do not sum to their total", badTimings)
	}
	if missingTraces > 0 {
		return fmt.Errorf("%d OK responses carried no trace_id", missingTraces)
	}
	if shedsNoHint > 0 {
		return fmt.Errorf("%d shed responses were missing the Retry-After header", shedsNoHint)
	}
	if degradedBad > 0 {
		return fmt.Errorf("%d degraded responses were not labelled cache=stale", degradedBad)
	}
	if *expectShed && sheds == 0 {
		return fmt.Errorf("expected backpressure sheds with Retry-After, saw none")
	}
	if *expectDegraded && degraded == 0 {
		return fmt.Errorf("expected degraded stale-cache responses, saw none")
	}
	if *minHitRate >= 0 && hitRate < *minHitRate {
		return fmt.Errorf("cache hit rate %.2f below required %.2f", hitRate, *minHitRate)
	}
	return nil
}

// buildWorkload synthesizes n request bodies over the geometry mix. Each
// geometry gets one ground-truth field and its measured Z, so repeat
// traffic exercises both cache keyspaces: bit-identical R fields for
// /v1/measure factorization reuse, repeat geometries for /v1/recover warm
// starts.
func buildWorkload(geoms string, seed int64, tol float64, deadlineMS int64, measureFrac float64, n int) ([]workItem, error) {
	type geomData struct {
		name        string
		rows, cols  int
		rRows, zRow [][]float64
	}
	var gds []geomData
	for _, g := range strings.Split(geoms, ",") {
		g = strings.TrimSpace(g)
		var rows, cols int
		if _, err := fmt.Sscanf(g, "%dx%d", &rows, &cols); err != nil || rows < 2 || cols < 2 {
			return nil, fmt.Errorf("invalid geometry %q (want e.g. 5x5 with sides >= 2)", g)
		}
		r, z, err := parma.Synthesize(parma.MediumConfig{Rows: rows, Cols: cols, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("synthesizing %s: %w", g, err)
		}
		gds = append(gds, geomData{name: g, rows: rows, cols: cols,
			rRows: fieldRows(r), zRow: fieldRows(z)})
	}
	if len(gds) == 0 {
		return nil, fmt.Errorf("no geometries given")
	}

	rng := rand.New(rand.NewSource(seed))
	items := make([]workItem, 0, n)
	for i := 0; i < n; i++ {
		gd := gds[rng.Intn(len(gds))]
		var it workItem
		it.geom = gd.name
		if rng.Float64() < measureFrac {
			body, err := json.Marshal(serve.MeasureRequest{
				Rows: gd.rows, Cols: gd.cols, R: gd.rRows, DeadlineMS: deadlineMS})
			if err != nil {
				return nil, err
			}
			it.path, it.body = "/v1/measure", body
		} else {
			body, err := json.Marshal(serve.RecoverRequest{
				Rows: gd.rows, Cols: gd.cols, Z: gd.zRow, Tol: tol, DeadlineMS: deadlineMS})
			if err != nil {
				return nil, err
			}
			it.path, it.body = "/v1/recover", body
		}
		items = append(items, it)
	}
	return items, nil
}

func fieldRows(f *parma.Field) [][]float64 {
	out := make([][]float64, f.Rows())
	for i := range out {
		row := make([]float64, f.Cols())
		for j := range row {
			row[j] = f.At(i, j)
		}
		out[i] = row
	}
	return out
}

func fire(client *http.Client, base, path string, body []byte) result {
	start := time.Now()
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return result{err: err, latency: time.Since(start), backend: base}
	}
	defer resp.Body.Close()
	var meta struct {
		Cache     string         `json:"cache"`
		BatchSize int            `json:"batch_size"`
		Degraded  bool           `json:"degraded"`
		Timings   *serve.Timings `json:"timings"`
		TraceID   string         `json:"trace_id"`
		Error     string         `json:"error"`
	}
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&meta)
	// X-Parma-Backend identifies which fleet worker answered when a
	// parma-router is in front; direct parmad targets fall back to the
	// target address itself.
	backend := resp.Header.Get("X-Parma-Backend")
	if backend == "" {
		backend = base
	}
	res := result{status: resp.StatusCode, latency: time.Since(start),
		cache: meta.Cache, batch: meta.BatchSize, degraded: meta.Degraded,
		timings: meta.Timings, traceID: meta.TraceID, backend: backend,
		hedged:     resp.Header.Get("X-Parma-Hedged") == "1",
		retryAfter: resp.Header.Get("Retry-After")}
	if resp.StatusCode != http.StatusOK {
		res.err = fmt.Errorf("HTTP %d: %s", resp.StatusCode, meta.Error)
	}
	return res
}

func report(w io.Writer, items []workItem, results []result, elapsed time.Duration) {
	lat := make([]time.Duration, 0, len(results))
	hits, failures, batchSum, batchN, sheds, degraded := 0, 0, 0, 0, 0, 0
	perGeom := map[string]int{}
	for i, r := range results {
		lat = append(lat, r.latency)
		perGeom[items[i].geom]++
		if r.degraded {
			degraded++
		}
		if r.err != nil || r.status != http.StatusOK {
			if r.status == http.StatusTooManyRequests || r.status == http.StatusServiceUnavailable {
				sheds++
			}
			failures++
			continue
		}
		if r.cache == "hit" {
			hits++
		}
		if r.batch > 0 {
			batchSum += r.batch
			batchN++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		idx := int(p * float64(len(lat)-1))
		return lat[idx]
	}
	geomNames := make([]string, 0, len(perGeom))
	for g := range perGeom {
		geomNames = append(geomNames, g)
	}
	sort.Strings(geomNames)
	mix := make([]string, 0, len(geomNames))
	for _, g := range geomNames {
		mix = append(mix, fmt.Sprintf("%s:%d", g, perGeom[g]))
	}

	fmt.Fprintf(w, "requests:   %d (%d failed) in %s\n", len(results), failures, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput: %.1f req/s\n", float64(len(results))/elapsed.Seconds())
	fmt.Fprintf(w, "geometries: %s\n", strings.Join(mix, " "))
	fmt.Fprintf(w, "latency:    p50=%s p95=%s p99=%s max=%s\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), q(1.0).Round(time.Microsecond))
	fmt.Fprintf(w, "cache:      %d/%d hits (%.0f%%)\n", hits, len(results),
		100*float64(hits)/float64(len(results)))
	// Per-backend response distribution with per-backend cache hit rate:
	// the observable difference between affinity routing (each geometry hot
	// on one worker) and round-robin (every worker lukewarm on everything).
	perBackend, backendHits := map[string]int{}, map[string]int{}
	for _, r := range results {
		if r.backend == "" {
			continue
		}
		perBackend[r.backend]++
		if r.status == http.StatusOK && r.cache == "hit" {
			backendHits[r.backend]++
		}
	}
	if len(perBackend) > 0 {
		names := make([]string, 0, len(perBackend))
		for b := range perBackend {
			names = append(names, b)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, b := range names {
			parts = append(parts, fmt.Sprintf("%s:%d(hit %.0f%%)", b, perBackend[b],
				100*float64(backendHits[b])/float64(perBackend[b])))
		}
		fmt.Fprintf(w, "backends:   %s\n", strings.Join(parts, " "))
	}
	if batchN > 0 {
		fmt.Fprintf(w, "batching:   mean batch size %.2f over %d ok requests\n",
			float64(batchSum)/float64(batchN), batchN)
	}
	if sheds > 0 || degraded > 0 {
		fmt.Fprintf(w, "resilience: %d shed (429/503), %d served degraded from stale cache\n", sheds, degraded)
	}
}

// checkAffinity asserts the response distribution looks like geometry-
// affinity routing: work spread over at least two backends overall, but
// each geometry's OK responses pinned — at most two distinct backends
// (the owner plus one spill/failover target) with a strict majority on
// one of them. Round-robin over three or more workers fails both ways.
func checkAffinity(items []workItem, results []result) error {
	perGeom := map[string]map[string]int{}
	overall := map[string]bool{}
	for i, r := range results {
		if r.err != nil || r.status != http.StatusOK || r.backend == "" {
			continue
		}
		g := items[i].geom
		if perGeom[g] == nil {
			perGeom[g] = map[string]int{}
		}
		perGeom[g][r.backend]++
		overall[r.backend] = true
	}
	if len(perGeom) == 0 {
		return fmt.Errorf("affinity check: no OK responses carried a backend label")
	}
	if len(overall) < 2 {
		return fmt.Errorf("affinity check: all traffic landed on %d backend(s); fleet is not spreading geometries", len(overall))
	}
	for g, counts := range perGeom {
		if len(counts) > 2 {
			return fmt.Errorf("affinity check: geometry %s answered by %d backends, want <= 2", g, len(counts))
		}
		total, top := 0, 0
		for _, c := range counts {
			total += c
			if c > top {
				top = c
			}
		}
		if 2*top < total {
			return fmt.Errorf("affinity check: geometry %s has no majority backend (%v)", g, counts)
		}
	}
	return nil
}

// timingsAddUp checks the latency-attribution acceptance bar: the stage
// breakdown must sum to within 10% (plus 2ms absolute slack for very fast
// requests) of the reported total.
func timingsAddUp(tm *serve.Timings) bool {
	if tm == nil {
		return false
	}
	sum := tm.QueueMS + tm.BatchMS + tm.FactorMS + tm.SolveMS
	diff := tm.TotalMS - sum
	if diff < 0 {
		diff = -diff
	}
	return diff <= 0.1*tm.TotalMS+2
}

// writeLatencyFile dumps OK-response latency percentiles as JSON so a
// smoke test can compare two runs numerically (hedged vs unhedged p99).
// Sheds and failures are excluded: a fast 429 would flatter the tail.
func writeLatencyFile(path string, results []result) error {
	lat := make([]time.Duration, 0, len(results))
	for _, r := range results {
		if r.err == nil && r.status == http.StatusOK {
			lat = append(lat, r.latency)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		return float64(lat[int(p*float64(len(lat)-1))]) / float64(time.Millisecond)
	}
	out, err := json.Marshal(struct {
		N     int     `json:"n"`
		P50MS float64 `json:"p50_ms"`
		P95MS float64 `json:"p95_ms"`
		P99MS float64 `json:"p99_ms"`
		MaxMS float64 `json:"max_ms"`
	}{len(lat), q(0.50), q(0.95), q(0.99), q(1.0)})
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// reportHedging scrapes the router's hedge counters, reports them next to
// the client-side X-Parma-Hedged count, and fails when hedging never fired
// — the smoke-test teeth for -hedge-budget configurations.
func reportHedging(client *http.Client, base string, results []result) error {
	hedgedSeen := 0
	for _, r := range results {
		if r.hedged {
			hedgedSeen++
		}
	}
	text, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	launched := counterValue(text, "parma_fleet_hedge_launched_total")
	won := counterValue(text, "parma_fleet_hedge_won_total")
	exhausted := counterValue(text, "parma_fleet_hedge_budget_exhausted_total")
	fmt.Printf("hedging:    launched=%.0f won=%.0f budget_exhausted=%.0f hedged_responses=%d\n",
		launched, won, exhausted, hedgedSeen)
	if launched == 0 {
		return fmt.Errorf("hedge report: router launched no hedged attempts")
	}
	return nil
}

// checkPrewarmHits asserts warm handoff worked: the first OK /v1/recover
// for every geometry, in send order, must report a warm-start cache hit.
// On a cold worker that first request would be a miss, so a pass means
// the re-homed keys were prewarmed before traffic arrived.
func checkPrewarmHits(items []workItem, results []result) error {
	seen := map[string]bool{}
	for i, r := range results {
		if items[i].path != "/v1/recover" || seen[items[i].geom] {
			continue
		}
		if r.err != nil || r.status != http.StatusOK {
			continue // sheds don't reach a worker's cache
		}
		seen[items[i].geom] = true
		if r.cache != "hit" {
			return fmt.Errorf("prewarm check: first recover for %s was cache=%q, want \"hit\"", items[i].geom, r.cache)
		}
	}
	if len(seen) == 0 {
		return fmt.Errorf("prewarm check: no OK /v1/recover responses to judge")
	}
	return nil
}

// scrapeMetrics fetches the Prometheus exposition from base.
func scrapeMetrics(client *http.Client, base string) ([]byte, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// counterValue extracts an unlabelled counter's value from exposition
// text; absent series read as 0.
func counterValue(text []byte, name string) float64 {
	for _, line := range strings.Split(string(text), "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
			return v
		}
	}
	return 0
}

// verifyMetrics scrapes /metrics and requires each of the wanted series
// substrings to be present.
func verifyMetrics(client *http.Client, base string, want []string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned HTTP %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, w := range want {
		if !bytes.Contains(text, []byte(w)) {
			return fmt.Errorf("/metrics is missing series %s", w)
		}
	}
	return nil
}
