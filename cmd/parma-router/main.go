// Command parma-router fronts a fleet of parmad workers: a reverse proxy
// with pluggable routing policies, health-checked failover, and
// geometry-affinity caching (internal/fleet).
//
// Endpoints:
//
//	POST   /v1/recover            proxied to a worker chosen by -policy (hedged when -hedge-budget > 0)
//	POST   /v1/measure            proxied likewise
//	GET    /healthz               fleet liveness + per-backend detail
//	GET    /fleet                 ring ownership (add ?key=RxC for one geometry)
//	GET    /admin/backends        membership list (requires -admin-token)
//	POST   /admin/backends        add a member at runtime
//	DELETE /admin/backends/{name} coordinated drain + remove
//	GET    /metrics               Prometheus text exposition
//
// Backends are named (-backend w0=host:port): the name is the consistent-
// hash identity, so geometry ownership survives router restarts and worker
// port changes. SIGINT/SIGTERM shuts the listener down gracefully.
//
// Example:
//
//	parma-router -addr :8320 -policy affinity \
//	    -backend w0=127.0.0.1:8321 -backend w1=127.0.0.2:8321
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parma/internal/fleet"
	"parma/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "parma-router:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("parma-router", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8320", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
	var backendSpecs []string
	fs.Func("backend", `worker spec "name=host:port" (repeatable; comma lists allowed; bare addrs become their own name)`,
		func(v string) error { backendSpecs = append(backendSpecs, v); return nil })
	policy := fs.String("policy", fleet.PolicyAffinity, "routing policy: roundrobin, leastloaded, or affinity")
	vnodes := fs.Int("vnodes", fleet.DefaultVnodes, "virtual nodes per backend on the consistent-hash ring")
	spillFactor := fs.Float64("spill-factor", 1.25, "bounded-load factor c: affinity spills off an owner loaded past c×mean")
	attempts := fs.Int("attempts", 3, "max backends tried per request before giving up")
	attemptTimeout := fs.Duration("attempt-timeout", 30*time.Second, "per-attempt deadline on proxied requests")
	probeEvery := fs.Duration("probe-every", 250*time.Millisecond, "health-probe period")
	suspectAfter := fs.Duration("suspect-after", time.Second, "eject a backend silent for this long (readmitted on first success)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive failures that open a backend's circuit breaker")
	breakerOpenFor := fs.Duration("breaker-open-for", 2*time.Second, "how long an open breaker skips its backend before a half-open probe")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on router-generated 503s")
	maxBody := fs.Int64("max-body", 1<<20, "max proxied request body bytes (bodies are buffered for idempotent replay; oversize answers 413)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently proxied requests router-wide; past it requests shed with 429 (0 disables)")
	maxPerBackend := fs.Int("max-per-backend", 0, "max outstanding requests per backend from this router; capped candidates are skipped (0 disables)")
	hedgeBudget := fs.Float64("hedge-budget", 0, "max fraction of /v1/recover requests that may launch a hedged second attempt (0 disables hedging)")
	hedgeDelayMin := fs.Duration("hedge-delay-min", time.Millisecond, "lower clamp on the rolling-p95 hedge delay")
	hedgeDelayMax := fs.Duration("hedge-delay-max", 500*time.Millisecond, "upper clamp on the rolling-p95 hedge delay")
	adminToken := fs.String("admin-token", "", "token authenticating the /admin/backends membership API (empty disables it)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long a coordinated removal waits for the departing backend's in-flight requests")
	compactEvery := fs.Duration("compact-interval", 10*time.Second, "fold span events into rollups on this interval (bounds memory)")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	traceFile := fs.String("trace", "", "write a Chrome trace of recorded spans to this file on shutdown")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		return err
	}
	obs.SetLogger(logger)

	backends, err := fleet.ParseBackends(backendSpecs)
	if err != nil {
		return err
	}

	rec := obs.NewRecorder()
	obs.Enable(rec)
	defer obs.Disable()

	compactDone := make(chan struct{})
	defer close(compactDone)
	go func() {
		tick := time.NewTicker(*compactEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				rec.CompactSpans()
			case <-compactDone:
				return
			}
		}
	}()

	router, err := fleet.New(fleet.Config{
		Backends:       backends,
		Policy:         *policy,
		Vnodes:         *vnodes,
		SpillFactor:    *spillFactor,
		Attempts:       *attempts,
		AttemptTimeout: *attemptTimeout,
		Probe: fleet.ProberConfig{
			Every:        *probeEvery,
			SuspectAfter: *suspectAfter,
		},
		BreakerThreshold: *breakerThreshold,
		BreakerOpenFor:   *breakerOpenFor,
		RetryAfter:       *retryAfter,
		MaxBody:          *maxBody,
		MaxInFlight:      *maxInflight,
		MaxPerBackend:    *maxPerBackend,
		HedgeBudget:      *hedgeBudget,
		HedgeDelayMin:    *hedgeDelayMin,
		HedgeDelayMax:    *hedgeDelayMax,
		AdminToken:       *adminToken,
		DrainTimeout:     *drainTimeout,
		Recorder:         rec,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	httpSrv := &http.Server{
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	router.Start(ctx)
	defer router.Close()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name
	}
	logger.Info("routing", "addr", bound, "policy", *policy, "backends", names,
		"vnodes", *vnodes, "attempts", *attempts,
		"probe_every", (*probeEvery).String(), "suspect_after", (*suspectAfter).String(),
		"hedge_budget", *hedgeBudget, "max_inflight", *maxInflight,
		"admin_api", *adminToken != "")

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("creating -trace file: %w", err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing -trace file: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		logger.Info("trace written", "file", *traceFile)
	}
	logger.Info("stopped cleanly")
	return nil
}
