package parma

import "parma/internal/manifold"

// The §IV-B surface: voltage fields as sampled scalar fields on the MEA
// manifold, discrete 1-forms with an exact Stokes theorem, Jacobian frames
// for non-orthogonal devices, and patch-parallel integration.

// ScalarField is a voltage field sampled on an equidistant grid.
type ScalarField = manifold.ScalarField

// OneForm is a discrete differential 1-form on grid edges (voltage drops).
type OneForm = manifold.OneForm

// Patch is a rectangle of grid cells — a frame-local work unit.
type Patch = manifold.Patch

// Frame is a local chart with a Jacobian, converting parameter-space
// derivatives on skewed or non-equidistant arrays to physical gradients.
type Frame = manifold.Frame

// NewScalarField returns a zero voltage field with unit node spacing.
func NewScalarField(rows, cols int) *ScalarField { return manifold.NewScalarField(rows, cols) }

// SampleField samples f(x, y) on a rows x cols grid with the given spacing.
func SampleField(rows, cols int, hx, hy float64, f func(x, y float64) float64) *ScalarField {
	return manifold.FromFunc(rows, cols, hx, hy, f)
}

// ExteriorDerivative returns dU: the exact discrete-gradient 1-form of a
// scalar field, whose curl vanishes identically on every cell.
func ExteriorDerivative(s *ScalarField) *OneForm { return manifold.D(s) }

// OrthogonalFrame returns the chart of an axis-aligned equidistant array.
func OrthogonalFrame(hu, hv float64) Frame { return manifold.Orthogonal(hu, hv) }

// SkewedFrame returns the chart of a sheared lattice (angle in radians).
func SkewedFrame(hu, hv, angle float64) Frame { return manifold.Skewed(hu, hv, angle) }
