package parma

import (
	"bytes"
	"math"
	"testing"
)

// TestPublicAPIEndToEnd walks the full pipeline through the public surface
// only: synthesize → analyze → form → serialize → recover → detect → score.
func TestPublicAPIEndToEnd(t *testing.T) {
	const n = 6
	cfg := MediumConfig{
		Rows: n, Cols: n, Seed: 7,
		Anomalies: []Anomaly{{CenterI: 3, CenterJ: 3, RadiusI: 1.1, RadiusJ: 1.1, Factor: 6}},
	}
	truthR, z, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewSquareArray(n)

	// Topology.
	report := Analyze(a)
	if report.Betti1 != (n-1)*(n-1) {
		t.Fatalf("β₁ = %d, want %d", report.Betti1, (n-1)*(n-1))
	}
	if err := VerifyTopology(a); err != nil {
		t.Fatal(err)
	}

	// Formation: all strategies agree.
	prob, err := NewProblem(a, z, SourceVoltage)
	if err != nil {
		t.Fatal(err)
	}
	census := SystemCensus(a)
	if census.Equations != 2*n*n*n {
		t.Fatalf("census = %d equations", census.Equations)
	}
	ref := Form(prob, Serial{}, FormationOptions{Collect: true})
	for _, s := range Strategies() {
		got := Form(prob, s, FormationOptions{Workers: 3, Collect: false})
		if got.Hash != ref.Hash || got.Count != census.Equations {
			t.Fatalf("strategy %s deviates from serial", s.Name())
		}
	}

	// Lossless conversion at ground truth.
	st, err := GroundTruthState(a, truthR, SourceVoltage)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ref.Equations {
		if r := math.Abs(e.Residual(st)); r > 1e-8 {
			t.Fatalf("residual %g at ground truth", r)
		}
	}

	// Serialization round trip.
	var buf bytes.Buffer
	if _, err := WriteSystem(&buf, ref.Equations); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(ref.Equations) {
		t.Fatal("round trip lost equations")
	}

	// Recovery and detection.
	rec, err := Recover(a, z, RecoverOptions{})
	if err != nil {
		t.Fatalf("%v (residual %g)", err, rec.Residual)
	}
	det := Detect(rec.R, DetectOptions{AbsoluteThreshold: 11000 * 1.05})
	score, err := EvaluateDetection(det.Mask, TruthMask(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if score.Recall() < 0.99 || score.Precision() < 0.99 {
		t.Fatalf("detection P/R = %g/%g", score.Precision(), score.Recall())
	}
}

func TestWriteEquationsSharded(t *testing.T) {
	_, z, err := Synthesize(MediumConfig{Rows: 4, Cols: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(NewSquareArray(4), z, SourceVoltage)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bytesWritten, err := WriteEquations(prob, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytesWritten == 0 {
		t.Fatal("nothing written")
	}
}

func TestTimeSeriesPublic(t *testing.T) {
	cfg := MediumConfig{Rows: 5, Cols: 5, Seed: 3,
		Anomalies: []Anomaly{{CenterI: 2, CenterJ: 2, RadiusI: 1, RadiusJ: 1, Factor: 2}}}
	series := TimeSeries(cfg, 0.1)
	if len(series) != 4 {
		t.Fatalf("%d samples, want 4", len(series))
	}
	if series[24].At(2, 2) <= series[0].At(2, 2) {
		t.Fatal("anomaly did not grow")
	}
}

func TestMeasurePublic(t *testing.T) {
	a := NewArray(2, 3)
	r := UniformField(2, 3, 1000)
	z, err := Measure(a, r)
	if err != nil {
		t.Fatal(err)
	}
	if z.Rows() != 2 || z.Cols() != 3 {
		t.Fatal("Z shape")
	}
	if z.Min() <= 0 || z.Max() > 1000 {
		t.Fatalf("Z out of physical range: %v", z)
	}
}
