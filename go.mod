module parma

go 1.22
