package parma

import (
	"parma/internal/circuit"
	"parma/internal/core"
	"parma/internal/grid"
)

// Fault-diagnosis surface: the same homology that licenses parallel
// processing doubles as a structural health check for defective devices.

// Mask marks which resistors of an array are physically present.
type Mask = grid.Mask

// FaultReport is the topological diagnosis of a masked (defective) MEA.
type FaultReport = core.FaultReport

// NewMask returns a mask with every resistor active.
func NewMask(a Array) *Mask { return grid.FullMaskFor(a) }

// Diagnose computes the fault report of a masked array: missing resistors,
// connectivity (β₀ > 1 means unreachable wires), dead electrodes, and the
// Kirchhoff loops — parallelism — lost to the defects.
func Diagnose(a Array, mask *Mask) FaultReport { return core.Diagnose(a, mask) }

// Measurable reports whether the wire pair (i, j) can still be measured on
// the masked device.
func Measurable(a Array, mask *Mask, i, j int) bool { return core.Measurable(a, mask, i, j) }

// MeasureMasked measures a defective device: pairs with no electrical path
// read +Inf.
func MeasureMasked(a Array, r *Field, mask *Mask) (*Field, error) {
	return circuit.MeasureAllMasked(a, r, mask)
}
