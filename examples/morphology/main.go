// Morphology: topological data analysis of recovered resistance fields.
//
// Two lesions with the SAME anomalous-cell count can mean very different
// things clinically: a solid proliferating mass versus a ring with a
// necrotic (dead, low-resistance) center. Cell counting cannot tell them
// apart; the first Betti number of the superlevel set can.
//
// The pipeline here is fully end-to-end: synthesize both media, measure Z
// with the forward model, recover the fields from Z alone, and classify
// each recovered field's morphology by its Betti curve.
//
//	go run ./examples/morphology
package main

import (
	"fmt"
	"log"

	"parma"
)

func main() {
	const n = 10
	a := parma.NewSquareArray(n)

	build := func(ring bool) *parma.Field {
		f := parma.UniformField(n, n, 3000)
		for i := 2; i <= 6; i++ {
			for j := 2; j <= 6; j++ {
				border := i == 2 || i == 6 || j == 2 || j == 6
				if !ring || border {
					f.Set(i, j, 24000)
				}
			}
		}
		return f
	}

	for _, scenario := range []struct {
		name string
		ring bool
	}{
		{"solid mass", false},
		{"ring lesion (necrotic center)", true},
	} {
		truth := build(scenario.ring)
		z, err := parma.Measure(a, truth)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := parma.Recover(a, z, parma.RecoverOptions{Tol: 1e-9})
		if err != nil {
			log.Fatalf("%s: recovery: %v", scenario.name, err)
		}

		fmt.Printf("%s:\n", scenario.name)
		det := parma.Detect(rec.R, parma.DetectOptions{Factor: 3})
		fmt.Printf("  detection: %d region(s), largest %d cells\n",
			len(det.Regions), det.Regions[0].Size())

		m := parma.ClassifyMorphology(rec.R, det.Threshold)
		shape := "solid"
		if m.Rings > 0 {
			shape = "ring — interior tissue is NOT elevated"
		}
		fmt.Printf("  topology:  β₀ = %d region(s), β₁ = %d ring(s) → %s\n", m.Regions, m.Rings, shape)

		curve := parma.BettiCurve(rec.R, parma.AutoThresholds(rec.R, 5))
		fmt.Printf("  Betti curve (threshold: components/holes):")
		for _, p := range curve {
			fmt.Printf("  %.0f: %d/%d", p.Threshold, p.Components, p.Holes)
		}
		fmt.Println()
		fmt.Println()
	}

	fmt.Println("same region size, different homology — β₁ separates ring lesions from masses.")
}
