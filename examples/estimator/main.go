// Estimator: the machine-learning pipeline that motivates Parma (§II-C).
//
// The companion systems (HDK, CNN-based tomography) estimate the unknown
// resistances with a neural network; their bottleneck is collecting
// training data — parametrized (Z, R) pairs — at scale. This example runs
// that pipeline end to end on Parma's machinery: generate a labeled corpus
// with the physical forward model, train a small MLP from scratch, and
// compare the learned estimator against both the mean predictor and the
// exact Levenberg-Marquardt recovery on held-out media.
//
//	go run ./examples/estimator
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"parma"
	"parma/internal/ann"
)

func main() {
	const n = 4
	fmt.Printf("building a (Z → R) corpus for %dx%d arrays with the forward model...\n", n, n)

	start := time.Now()
	corpus, err := ann.Generate(ann.DatasetConfig{Rows: n, Cols: n, Samples: 600, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d samples in %v (this is the data collection Parma accelerates)\n",
		len(corpus.Features), time.Since(start).Round(time.Millisecond))

	trainF, trainL, testF, testL := corpus.Split(0.85)
	net := ann.NewMLP(7, n*n, 64, n*n)
	start = time.Now()
	curve := net.Train(trainF, trainL, ann.TrainOptions{Epochs: 80, LearningRate: 0.02, Seed: 1})
	fmt.Printf("  trained MLP(%d-64-%d) for %d epochs in %v: loss %.2e -> %.2e\n",
		n*n, n*n, len(curve), time.Since(start).Round(time.Millisecond), curve[0], curve[len(curve)-1])

	annMSE := net.MSE(testF, testL)
	meanMSE := ann.MeanPredictorMSE(trainL, testL)
	fmt.Printf("\nheld-out MSE: mlp %.2e vs mean-predictor %.2e (%.1fx better)\n",
		annMSE, meanMSE, meanMSE/annMSE)

	// Head-to-head on one held-out medium: the instant ANN estimate vs
	// the exact (but iterative) LM recovery.
	a := parma.NewSquareArray(n)
	sample := 0
	z := parma.NewField(n, n)
	truth := parma.NewField(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			z.Set(i, j, testF[sample][i*n+j]*corpus.ZScale)
			truth.Set(i, j, testL[sample][i*n+j]*corpus.RScale)
		}
	}

	start = time.Now()
	pred := corpus.PredictField(net.Predict(testF[sample]))
	annTime := time.Since(start)

	start = time.Now()
	rec, err := parma.Recover(a, z, parma.RecoverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	lmTime := time.Since(start)

	relErr := func(f *parma.Field) float64 {
		var num, den float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := f.At(i, j) - truth.At(i, j)
				num += d * d
				den += truth.At(i, j) * truth.At(i, j)
			}
		}
		return math.Sqrt(num / den)
	}
	fmt.Printf("\none held-out medium:\n")
	fmt.Printf("  mlp estimate:    rel. error %6.2f%% in %8v\n", 100*relErr(pred), annTime.Round(time.Microsecond))
	fmt.Printf("  exact recovery:  rel. error %6.2e%% in %8v\n", 100*relErr(rec.R), lmTime.Round(time.Microsecond))
	fmt.Println("\nthe estimator answers instantly; the solver answers exactly —")
	fmt.Println("and Parma's formation machinery is what feeds the estimator's training set.")
}
