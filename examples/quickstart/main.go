// Quickstart: the smallest complete Parma session.
//
// It synthesizes a 10x10 microelectrode array measurement, inspects the
// topology that licenses parallel processing, forms the joint-constraint
// equation system with every strategy, and verifies they all produce the
// identical system.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"parma"
)

func main() {
	const n = 10

	// 1. Synthesize a measurement workload: a healthy medium (2,000 to
	// 11,000 kΩ, as in the paper's wet lab) with one anomalous region.
	cfg := parma.MediumConfig{
		Rows: n, Cols: n, Seed: 1,
		Anomalies: []parma.Anomaly{{CenterI: 5, CenterJ: 5, RadiusI: 2, RadiusJ: 2, Factor: 4}},
	}
	_, z, err := parma.Synthesize(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured Z matrix: %v\n", z)

	// 2. The topology: an n x n MEA is a 1-dimensional simplicial complex
	// with (n-1)^2 independent Kirchhoff loops — the intrinsic parallelism.
	a := parma.NewSquareArray(n)
	report := parma.Analyze(a)
	fmt.Printf("topology: β₀=%d β₁=%d (cyclomatic %d), χ=%d\n",
		report.Betti0, report.Betti1, report.Cyclomatic, report.Euler)
	if err := parma.VerifyTopology(a); err != nil {
		log.Fatal(err)
	}

	// 3. The joint-constraint system: 2n³ equations instead of n^(n+1)
	// exponential paths.
	census := parma.SystemCensus(a)
	fmt.Printf("system: %d equations, %d unknowns\n", census.Equations, census.Unknowns)

	prob, err := parma.NewProblem(a, z, parma.SourceVoltage)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Form it with every strategy; all must agree exactly.
	ref := parma.Form(prob, parma.Serial{}, parma.FormationOptions{Collect: true})
	for _, s := range parma.Strategies() {
		start := time.Now()
		res := parma.Form(prob, s, parma.FormationOptions{Workers: 4})
		agree := "agrees with serial"
		if res.Hash != ref.Hash {
			agree = "DISAGREES"
		}
		fmt.Printf("  %-18s %6d equations in %8v  (%s)\n",
			s.Name(), res.Count, time.Since(start).Round(time.Microsecond), agree)
	}

	fmt.Println("done: see examples/woundmonitor for the full detection pipeline")
}
