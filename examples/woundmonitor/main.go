// Woundmonitor: the biomedical scenario from the paper's introduction —
// an MEA applied to a patient's wound surface, measured on the wet-lab
// protocol (0, 6, 12, 24 hours), with an anomalous region growing over
// time.
//
// For each time point the pipeline is exactly what a deployment would run:
// measure Z, recover the resistance field from Z alone, detect anomalous
// regions, and report growth — with precision/recall scored against the
// synthetic ground truth.
//
//	go run ./examples/woundmonitor
package main

import (
	"fmt"
	"log"
	"sort"

	"parma"
)

func main() {
	const n = 8

	cfg := parma.MediumConfig{
		Rows: n, Cols: n, Seed: 7,
		Anomalies: []parma.Anomaly{
			{CenterI: 2.5, CenterJ: 5, RadiusI: 1.4, RadiusJ: 1.6, Factor: 3},
		},
	}
	// The anomaly's resistance grows ~7% per hour (a proxy for abnormal
	// cell proliferation under the electrodes).
	series := parma.TimeSeries(cfg, 0.07)
	truth := parma.TruthMask(cfg)
	a := parma.NewSquareArray(n)

	hours := make([]int, 0, len(series))
	for h := range series {
		hours = append(hours, h)
	}
	sort.Ints(hours)

	fmt.Printf("wound monitoring on a %dx%d MEA, %d time points\n\n", n, n, len(hours))
	var prevPeak float64
	for _, h := range hours {
		groundTruth := series[h]

		// What the device actually observes: the pairwise Z matrix.
		z, err := parma.Measure(a, groundTruth)
		if err != nil {
			log.Fatal(err)
		}

		// Inverse problem: resistance field from measurements alone.
		rec, err := parma.Recover(a, z, parma.RecoverOptions{Tol: 1e-9})
		if err != nil {
			log.Fatalf("hour %d: recovery: %v (residual %.3g)", h, err, rec.Residual)
		}

		// Detection: anything above the healthy range is anomalous.
		det := parma.Detect(rec.R, parma.DetectOptions{AbsoluteThreshold: 11000 * 1.05})
		score, err := parma.EvaluateDetection(det.Mask, truth)
		if err != nil {
			log.Fatal(err)
		}

		peak := 0.0
		cells := 0
		if len(det.Regions) > 0 {
			peak = det.Regions[0].PeakValue
			cells = det.Regions[0].Size()
		}
		growth := ""
		if prevPeak > 0 && peak > 0 {
			growth = fmt.Sprintf("  (+%.0f%% since last sample)", 100*(peak/prevPeak-1))
		}
		fmt.Printf("hour %2d: %d region(s), largest %2d cells, peak %8.0f kΩ%s\n",
			h, len(det.Regions), cells, peak, growth)
		fmt.Printf("         recovery residual %.1e in %d iters; precision %.2f recall %.2f\n",
			rec.Residual, rec.Iterations, score.Precision(), score.Recall())
		prevPeak = peak
	}

	fmt.Println("\nthe anomaly's peak resistance rises monotonically — the signature of abnormal tissue.")
}
