// Scalability: sweep the formation strategies and worker counts on this
// machine and print the speedup table — a single-machine rehearsal of the
// paper's Figures 6 and 7.
//
//	go run ./examples/scalability [-n 24] [-workers 1,2,4,8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"parma"
)

func main() {
	n := flag.Int("n", 24, "array size (n x n)")
	workersFlag := flag.String("workers", "1,2,4,8", "worker counts to sweep")
	flag.Parse()

	var workers []int
	for _, part := range strings.Split(*workersFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("bad -workers: %v", err)
		}
		workers = append(workers, k)
	}

	_, z, err := parma.Synthesize(parma.MediumConfig{Rows: *n, Cols: *n, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	prob, err := parma.NewProblem(parma.NewSquareArray(*n), z, parma.SourceVoltage)
	if err != nil {
		log.Fatal(err)
	}
	census := parma.SystemCensus(parma.NewSquareArray(*n))
	fmt.Printf("forming %d equations of a %dx%d MEA\n\n", census.Equations, *n, *n)

	timeRun := func(s parma.Strategy, opts parma.FormationOptions) time.Duration {
		// Best of three to damp scheduling noise.
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			res := parma.Form(prob, s, opts)
			if res.Count != census.Equations {
				log.Fatalf("%s formed %d equations", s.Name(), res.Count)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	serial := timeRun(parma.Serial{}, parma.FormationOptions{})
	fmt.Printf("%-20s %12v  speedup 1.00x\n", "single-thread", serial.Round(time.Microsecond))
	fourWay := timeRun(parma.FourWay{}, parma.FormationOptions{})
	fmt.Printf("%-20s %12v  speedup %.2fx (structurally capped at 4 threads)\n",
		"parallel", fourWay.Round(time.Microsecond), float64(serial)/float64(fourWay))

	for _, k := range workers {
		bal := timeRun(parma.Balanced{}, parma.FormationOptions{Workers: k})
		fine := timeRun(parma.FineGrained{}, parma.FormationOptions{Workers: k})
		steal := timeRun(parma.Stealing{}, parma.FormationOptions{Workers: k})
		fmt.Printf("k=%-3d balanced %10v (%.2fx)   pymp %10v (%.2fx)   stealing %10v (%.2fx)\n",
			k,
			bal.Round(time.Microsecond), float64(serial)/float64(bal),
			fine.Round(time.Microsecond), float64(serial)/float64(fine),
			steal.Round(time.Microsecond), float64(serial)/float64(steal))
	}

	fmt.Println("\nnote: wall-clock speedup requires physical cores; on a single-core")
	fmt.Println("machine use cmd/parma-bench, which reports modeled schedule makespans.")
}
