// VLSI: the chip-design application from the paper's introduction (use
// case iii) — a power-delivery mesh is electrically an MEA, and a via whose
// resistance has risen (electromigration, voiding) is exactly an anomaly.
//
// The mesh here is rectangular (6 power rails x 12 ground straps), with a
// tight healthy-via resistance band. Two degraded vias are planted; the
// pipeline measures rail-to-strap resistances, recovers every via from the
// measurements alone, and reports the degraded ones with their severity.
//
//	go run ./examples/vlsi
package main

import (
	"fmt"
	"log"

	"parma"
)

func main() {
	const rails, straps = 6, 12

	// Healthy vias: 1.8–2.2 (arbitrary units; real meshes are mΩ — only
	// ratios matter to the solver). Two degraded vias at ~8x nominal.
	cfg := parma.MediumConfig{
		Rows: rails, Cols: straps, Seed: 77,
		BackgroundMin: 1.8, BackgroundMax: 2.2,
		Anomalies: []parma.Anomaly{
			{CenterI: 1, CenterJ: 3, RadiusI: 0.5, RadiusJ: 0.5, Factor: 8},
			{CenterI: 4, CenterJ: 9, RadiusI: 0.5, RadiusJ: 0.5, Factor: 8},
		},
	}
	truth, z, err := parma.Synthesize(cfg)
	if err != nil {
		log.Fatal(err)
	}

	a := parma.NewArray(rails, straps)
	rep := parma.Analyze(a)
	fmt.Printf("power mesh: %d rails x %d straps, %d vias, %d independent loops\n\n",
		rails, straps, rep.Resistors, rep.Betti1)

	// The tester measures only pad-to-pad resistances (rail i to strap j).
	fmt.Printf("measured pad-to-pad resistance range: %.3f – %.3f\n", z.Min(), z.Max())

	rec, err := parma.Recover(a, z, parma.RecoverOptions{Tol: 1e-10})
	if err != nil {
		log.Fatalf("recovery: %v (residual %g)", err, rec.Residual)
	}
	fmt.Printf("via map recovered in %d iterations (residual %.1e)\n\n", rec.Iterations, rec.Residual)

	det := parma.Detect(rec.R, parma.DetectOptions{Factor: 3})
	fmt.Printf("%d degraded via group(s) above %.2f:\n", len(det.Regions), det.Threshold)
	for _, reg := range det.Regions {
		for _, cell := range reg.Cells {
			i, j := cell[0], cell[1]
			fmt.Printf("  via (rail %d, strap %2d): recovered %.3f, truth %.3f, %0.1fx nominal\n",
				i, j, rec.R.At(i, j), truth.At(i, j), rec.R.At(i, j)/rec.R.Mean())
		}
	}

	score, err := parma.EvaluateDetection(det.Mask, parma.TruthMask(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nagainst ground truth: precision %.2f, recall %.2f\n", score.Precision(), score.Recall())

	// Sanity for the electrical model: a degraded via raises the local
	// pad-to-pad reading but far less than the via itself rose — current
	// detours through the mesh, which is why naive Z-thresholding fails
	// and full recovery is needed.
	fmt.Printf("\nwhy recovery matters: via (1,3) rose %.1fx, but Z(1,3) rose only %.2fx\n",
		truth.At(1, 3)/truth.Mean(), z.At(1, 3)/z.Mean())
}
