// Faultscan: manufacturing test of a defective MEA using the topological
// model as a structural health check — the homology that counts Kirchhoff
// loops also counts what defects destroyed.
//
// The scenario: a production 8x8 device lost three resistors to
// fabrication defects and one entire electrode to a broken bond wire. The
// scan diagnoses the damage from the mask, confirms it against electrical
// measurements (+Inf readings), and quantifies the parallelism lost.
//
//	go run ./examples/faultscan
package main

import (
	"fmt"
	"log"
	"math"

	"parma"
)

func main() {
	const n = 8
	a := parma.NewSquareArray(n)

	// The defect map from optical inspection.
	mask := parma.NewMask(a)
	mask.Disable(2, 3)
	mask.Disable(2, 4)
	mask.Disable(5, 1)
	mask.DisableWire(false, 6) // bond wire of vertical electrode VII broke

	healthy := parma.Analyze(a)
	rep := parma.Diagnose(a, mask)

	fmt.Printf("device: %dx%d, %d resistors, %d loops when healthy\n\n",
		n, n, healthy.Resistors, healthy.Betti1)
	fmt.Printf("defects: %d resistors missing\n", rep.MissingResistors)
	fmt.Printf("electrical components (β₀): %d\n", rep.Betti0)
	fmt.Printf("remaining loops (β₁):       %d  (%d lost — that much parallelism is gone)\n",
		rep.Betti1, rep.LostLoops)
	for _, w := range rep.IsolatedWires {
		kind := "horizontal"
		if !w.Horizontal {
			kind = "vertical"
		}
		fmt.Printf("dead electrode:             %s wire %d\n", kind, w.Index)
	}

	// Cross-check the diagnosis electrically: measure the defective
	// device and count unmeasurable (+Inf) pairs.
	r := parma.SynthesizeMedium(parma.MediumConfig{Rows: n, Cols: n, Seed: 13})
	z, err := parma.MeasureMasked(a, r, mask)
	if err != nil {
		log.Fatal(err)
	}
	infPairs := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.IsInf(z.At(i, j), 1) {
				infPairs++
				if parma.Measurable(a, mask, i, j) {
					log.Fatalf("topology says (%d,%d) is measurable but Z is infinite", i, j)
				}
			} else if !parma.Measurable(a, mask, i, j) {
				log.Fatalf("topology says (%d,%d) is unmeasurable but Z = %g", i, j, z.At(i, j))
			}
		}
	}
	fmt.Printf("\nelectrical cross-check: %d of %d pairs unmeasurable — matches the topology exactly\n",
		infPairs, n*n)

	if rep.Betti0 > 1 {
		fmt.Println("verdict: device partitioned; replace the broken electrode before use")
	} else {
		fmt.Println("verdict: degraded but serviceable")
	}
}
