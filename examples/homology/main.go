// Homology: an interactive tour of the algebraic-topological machinery
// behind Parma (§III of the paper), run on MEAs of several shapes.
//
// For each array it prints the simplicial census, the Betti numbers
// computed homologically over GF(2), the Maxwell cyclomatic cross-check,
// the theoretical parallelism, and a sample of the fundamental cycle basis
// — the independent "holes" the fine-grained strategy parallelizes over.
//
//	go run ./examples/homology
package main

import (
	"fmt"
	"log"

	"parma"
	"parma/internal/topo"
)

func main() {
	shapes := []struct {
		rows, cols int
		note       string
	}{
		{1, 1, "a single resistor: no loops at all"},
		{2, 2, "the smallest array with a cycle"},
		{3, 3, "the paper's Figure 1 device"},
		{3, 8, "a rectangular probe strip"},
		{15, 15, "the continuous-flow screening device of [5]"},
	}

	for _, s := range shapes {
		a := parma.NewArray(s.rows, s.cols)
		rep := parma.Analyze(a)
		fmt.Printf("%dx%d MEA — %s\n", s.rows, s.cols, s.note)
		fmt.Printf("  joints %4d   resistors %4d   wire segments %d\n",
			rep.Joints, rep.Resistors, rep.Simplices1-rep.Resistors)
		fmt.Printf("  β₀ = %d, β₁ = %d   (cyclomatic %d, χ = %d)\n",
			rep.Betti0, rep.Betti1, rep.Cyclomatic, rep.Euler)
		want := (s.rows - 1) * (s.cols - 1)
		fmt.Printf("  closed form (m−1)(n−1) = %d — %s\n", want, check(rep.Betti1 == want))
		if err := parma.VerifyTopology(a); err != nil {
			log.Fatalf("  invariants FAILED: %v", err)
		}
		fmt.Printf("  all §III invariants hold (Prop. 1, ∂∂ = 0, independent basis)\n")

		// The theoretical consequence (§IV-B): O(n^3) formation work
		// divided across β₁ independent loops approaches O(n).
		census := parma.SystemCensus(a)
		if rep.Betti1 > 0 {
			fmt.Printf("  parallelism: %d equations / %d independent loops ≈ %d per loop\n",
				census.Equations, rep.Betti1, census.Equations/rep.Betti1)
		}
		fmt.Println()
	}

	fmt.Println("every Kirchhoff voltage law instance lives on one of these independent")
	fmt.Println("cycles; that is why equation formation parallelizes without coordination.")

	// Bonus: what the paper's Z/2 coefficients cannot see. Build a torus
	// and a Klein bottle; mod 2 they are indistinguishable (β = 1,2,1),
	// but integral homology exposes the Klein bottle's ℤ/2 torsion.
	fmt.Println("\n--- beyond Z/2: integral homology and torsion ---")
	for _, surf := range []struct {
		name string
		flip bool
	}{{"torus", false}, {"Klein bottle", true}} {
		c := quotientSurface(4, 4, surf.flip)
		mod2 := c.BettiNumbers()
		integral := c.IntegralHomologyAll()
		fmt.Printf("%-12s  Z/2 β = %v   H₁(ℤ) = ℤ^%d", surf.name, mod2, integral[1].Betti)
		for _, d := range integral[1].Torsion {
			fmt.Printf(" ⊕ ℤ/%d", d)
		}
		fmt.Printf("   H₂(ℤ) = ℤ^%d\n", integral[2].Betti)
	}
	fmt.Println("same mod-2 shadow, different integral groups — torsion is invisible to Z/2.")
}

// quotientSurface glues a 4x4 triangulated square into a torus (straight)
// or Klein bottle (flipped) quotient.
func quotientSurface(m, n int, flip bool) *topo.Complex {
	id := func(i, j int) int {
		for j >= n {
			j -= n
			if flip {
				i = -i
			}
		}
		i = ((i % m) + m) % m
		return i*n + j
	}
	c := topo.NewComplex()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.Add(topo.NewSimplex(id(i, j), id(i+1, j), id(i+1, j+1)))
			c.Add(topo.NewSimplex(id(i, j), id(i, j+1), id(i+1, j+1)))
		}
	}
	return c
}

func check(ok bool) string {
	if ok {
		return "matches"
	}
	return "MISMATCH"
}
