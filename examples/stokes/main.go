// Stokes: the differential-geometric machinery of §IV-B, run standalone.
//
// It samples a smooth voltage field on a dense grid, takes its exterior
// derivative (the voltage-drop 1-form on wire segments), verifies that the
// discrete Stokes theorem holds exactly — boundary circulation equals the
// patch integral of the curl — and shows that patch-parallel integration
// over (n−1)² frame-local cells reproduces the global value, which is the
// parallelism argument behind Parma's O(n) bound. It closes with the
// Jacobian-frame trick: recovering physical gradients on a sheared array.
//
//	go run ./examples/stokes
package main

import (
	"fmt"
	"math"

	"parma"
)

func main() {
	const nodes = 64

	// A plausible potential: a dipole-like smooth field.
	u := parma.SampleField(nodes, nodes, 0.1, 0.1, func(x, y float64) float64 {
		return 5 * math.Exp(-((x-3)*(x-3)+(y-3)*(y-3))/4) * math.Cos(x-y)
	})

	// Voltage drops along wire segments form a discrete 1-form; because it
	// is exact (dU), Kirchhoff's voltage law holds with zero defect on
	// every loop.
	form := parma.ExteriorDerivative(u)
	worstCell := 0.0
	for i := 0; i < nodes-1; i++ {
		for j := 0; j < nodes-1; j++ {
			if c := math.Abs(form.Curl(i, j)); c > worstCell {
				worstCell = c
			}
		}
	}
	fmt.Printf("KVL defect on the worst unit loop: %.2e (exactly zero up to rounding)\n", worstCell)

	// Discrete Stokes on a large patch.
	patch := parma.Patch{I0: 5, I1: 50, J0: 10, J1: 60}
	circ := form.Circulation(patch)
	integral := form.CurlIntegral(patch)
	fmt.Printf("patch boundary circulation: %+.3e\n", circ)
	fmt.Printf("patch curl integral:        %+.3e (Stokes: equal)\n", integral)

	// Patch-parallel integration: split the full grid into frame-local
	// patches and integrate concurrently; the sum equals the boundary
	// circulation of the whole grid.
	full := parma.Patch{I0: 0, I1: nodes - 1, J0: 0, J1: nodes - 1}
	patches := form.SplitPatches(8, 8)
	for _, workers := range []int{1, 4, 16} {
		total, parts := form.ParallelCurlIntegral(patches, workers)
		fmt.Printf("workers=%2d: Σ over %d patches = %+.3e (global boundary %+.3e)\n",
			workers, len(parts), total, form.Circulation(full))
	}

	// Jacobian frames: on a 30°-sheared array the raw lattice derivatives
	// are wrong, but J⁻ᵀ restores the physical gradient exactly.
	const gx, gy = 2.5, -1.5
	frame := parma.SkewedFrame(1.0, 1.0, math.Pi/6)
	sheared := parma.NewScalarField(16, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			x, y := frame.Apply(float64(j), float64(i))
			sheared.Set(i, j, gx*x+gy*y)
		}
	}
	gu, gv := sheared.Gradient(8, 8)
	px, py, err := frame.PhysicalGradient(gu, gv)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsheared lattice: raw lattice gradient (%.3f, %.3f)\n", gu, gv)
	fmt.Printf("after Jacobian frame conversion: (%.3f, %.3f) — truth (%.1f, %.1f)\n", px, py, gx, gy)
}
