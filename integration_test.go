package parma

// Cross-module integration tests: flows that span several subsystems in
// one pass, exercised through the public API exactly as a downstream user
// would compose them.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIntegrationDefectiveDeviceWorkflow: diagnose a damaged device, then
// run recovery on a healthy replacement and confirm the monitoring loop
// still closes.
func TestIntegrationDefectiveDeviceWorkflow(t *testing.T) {
	const n = 6
	a := NewSquareArray(n)

	// Incoming device fails inspection.
	mask := NewMask(a)
	mask.DisableWire(true, 2)
	rep := Diagnose(a, mask)
	if rep.Betti0 != 2 || len(rep.IsolatedWires) != 1 {
		t.Fatalf("diagnosis missed the dead wire: %+v", rep)
	}
	// Its measurements really are unusable for the dead wire's pairs.
	r := SynthesizeMedium(MediumConfig{Rows: n, Cols: n, Seed: 1})
	z, err := MeasureMasked(a, r, mask)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if !math.IsInf(z.At(2, j), 1) {
			t.Fatalf("Z(2,%d) finite on a dead wire", j)
		}
	}

	// Replacement device passes and the full pipeline runs.
	good := NewMask(a)
	if rep := Diagnose(a, good); !rep.FullyFunctional {
		t.Fatal("fresh mask not functional")
	}
	z2, err := Measure(a, r)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(a, z2, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.R.MaxAbsDiff(r)/r.Max() > 1e-4 {
		t.Fatal("recovery on the replacement device failed")
	}
}

// TestIntegrationEquationFileLifecycle: form → write shards → re-read →
// evaluate residuals at ground truth — the file format carries everything
// needed to verify a solution offline.
func TestIntegrationEquationFileLifecycle(t *testing.T) {
	const n = 5
	cfg := MediumConfig{Rows: n, Cols: n, Seed: 9}
	truth, z, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewSquareArray(n)
	prob, err := NewProblem(a, z, SourceVoltage)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if _, err := WriteEquations(prob, dir, 3); err != nil {
		t.Fatal(err)
	}
	shards, err := filepath.Glob(filepath.Join(dir, "equations-*.eq"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards: %v", err)
	}
	var eqs []Equation
	for _, path := range shards {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		part, err := ParseSystem(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		eqs = append(eqs, part...)
	}
	if len(eqs) != SystemCensus(a).Equations {
		t.Fatalf("shards hold %d equations, want %d", len(eqs), SystemCensus(a).Equations)
	}
	st, err := GroundTruthState(a, truth, SourceVoltage)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eqs {
		if res := math.Abs(e.Residual(st)); res > 1e-8 {
			t.Fatalf("re-read equation has residual %g", res)
		}
	}
}

// TestIntegrationMorphologyThroughRecovery: the ring-vs-blob topological
// signature survives the measure → recover round trip.
func TestIntegrationMorphologyThroughRecovery(t *testing.T) {
	const n = 9
	a := NewSquareArray(n)
	ring := UniformField(n, n, 3000)
	for i := 2; i <= 6; i++ {
		for j := 2; j <= 6; j++ {
			if i == 2 || i == 6 || j == 2 || j == 6 {
				ring.Set(i, j, 24000)
			}
		}
	}
	z, err := Measure(a, ring)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(a, z, RecoverOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	m := ClassifyMorphology(rec.R, 10000)
	if m.Regions != 1 || m.Rings != 1 {
		t.Fatalf("recovered morphology %+v, want one ring", m)
	}
}

// TestIntegrationHeatmapAndDOT: visualization outputs are well-formed for
// real pipeline artifacts.
func TestIntegrationHeatmapAndDOT(t *testing.T) {
	_, z, err := Synthesize(MediumConfig{Rows: 4, Cols: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var pgm strings.Builder
	if err := WriteHeatmap(&pgm, z); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pgm.String(), "P2\n4 4\n255\n") {
		t.Fatalf("bad PGM header: %q", pgm.String()[:20])
	}
	var dot strings.Builder
	if err := WriteJointGraphDOT(&dot, NewSquareArray(3), "fig1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "R[2,2]") {
		t.Fatal("DOT missing resistor labels")
	}
	dot.Reset()
	if err := WriteWireGraphDOT(&dot, NewSquareArray(3), "fig2"); err != nil {
		t.Fatal(err)
	}
	if strings.Count(dot.String(), " -- ") != 9 {
		t.Fatalf("wire graph should have 9 edges:\n%s", dot.String())
	}
}

// TestIntegrationTimeSeriesDetectionGrowth: across the 24-hour protocol
// the detected anomaly's peak must grow monotonically after recovery.
func TestIntegrationTimeSeriesDetectionGrowth(t *testing.T) {
	const n = 6
	cfg := MediumConfig{Rows: n, Cols: n, Seed: 21,
		Anomalies: []Anomaly{{CenterI: 3, CenterJ: 3, RadiusI: 1, RadiusJ: 1, Factor: 4}}}
	series := TimeSeries(cfg, 0.05)
	a := NewSquareArray(n)
	prevPeak := 0.0
	for _, h := range []int{0, 6, 12, 24} {
		z, err := Measure(a, series[h])
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(a, z, RecoverOptions{})
		if err != nil {
			t.Fatalf("hour %d: %v", h, err)
		}
		det := Detect(rec.R, DetectOptions{Factor: 2.5})
		if len(det.Regions) == 0 {
			t.Fatalf("hour %d: anomaly not detected", h)
		}
		peak := det.Regions[0].PeakValue
		if peak <= prevPeak {
			t.Fatalf("hour %d: peak %g did not grow past %g", h, peak, prevPeak)
		}
		prevPeak = peak
	}
}
