#!/bin/sh
# chaos-smoke: end-to-end resilience check, two stages. Run via
# `make chaos-smoke`.
#
# Stage 1 (formation): run the self-healing distributed formation as real
# OS processes over TCP, once fault-free and once under seeded chaos (5%
# drop, 5% dup, rank 2 crashed mid-formation). The chaos run must report
# the crash and the redistribution, and every surviving rank must land on
# the exact system hash of the fault-free run — bit-identical recovery.
#
# Stage 2 (serving): boot parmad with a deliberately tiny queue, warm the
# stale cache, then hammer it past saturation. Shed requests must carry
# Retry-After; saturated requests on warmed geometries must be served from
# the stale cache flagged degraded:true. SIGTERM must still drain cleanly.
set -eu

tmp=$(mktemp -d chaos-smoke.XXXXXX)
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/parma-mpi" ./cmd/parma-mpi
go build -o "$tmp/parmad" ./cmd/parmad
go build -o "$tmp/parma-load" ./cmd/parma-load

# --- Stage 1: self-healing formation, bit-identical under chaos ---------

"$tmp/parma-mpi" -launch -ranks 4 -n 10 -resilient >"$tmp/clean.log" 2>&1 || {
	echo "chaos-smoke: fault-free resilient run failed"; cat "$tmp/clean.log"; exit 1; }
"$tmp/parma-mpi" -launch -ranks 4 -n 10 \
	-chaos "seed=7,drop=0.05,dup=0.05,crash=2@3" >"$tmp/chaos.log" 2>&1 || {
	echo "chaos-smoke: chaos run failed"; cat "$tmp/chaos.log"; exit 1; }

grep -q "crashed by fault injection" "$tmp/chaos.log" || {
	echo "chaos-smoke: scheduled crash never fired"; cat "$tmp/chaos.log"; exit 1; }
grep -q "dead ranks \[2\]" "$tmp/chaos.log" || {
	echo "chaos-smoke: coordinator never declared rank 2 dead"; cat "$tmp/chaos.log"; exit 1; }

clean_hash=$(grep -o 'system hash [0-9a-f]*' "$tmp/clean.log" | sort -u)
chaos_hash=$(grep -o 'system hash [0-9a-f]*' "$tmp/chaos.log" | sort -u)
[ "$(printf '%s\n' "$clean_hash" | wc -l)" = 1 ] || {
	echo "chaos-smoke: fault-free ranks disagree on the system hash"; cat "$tmp/clean.log"; exit 1; }
[ "$(printf '%s\n' "$chaos_hash" | wc -l)" = 1 ] || {
	echo "chaos-smoke: surviving ranks disagree on the system hash"; cat "$tmp/chaos.log"; exit 1; }
[ -n "$clean_hash" ] && [ "$clean_hash" = "$chaos_hash" ] || {
	echo "chaos-smoke: chaos run diverged: '$clean_hash' vs '$chaos_hash'"
	cat "$tmp/clean.log" "$tmp/chaos.log"; exit 1; }

echo "chaos-smoke: formation survived drop/dup/crash with $clean_hash"

# --- Stage 2: parmad saturation -> Retry-After sheds + degraded stale ---

"$tmp/parmad" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
	-workers 1 -queue-depth 2 -batch-window 300ms -max-batch 100 \
	>"$tmp/parmad.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 50); do
	[ -s "$tmp/addr" ] && break
	sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "chaos-smoke: parmad never published its address"; cat "$tmp/parmad.log"; exit 1; }
addr=$(head -n 1 "$tmp/addr")

# Warm the 4x4 stale cache at a rate the tiny queue can absorb.
"$tmp/parma-load" -addr "$addr" -n 8 -qps 2 -geoms 4x4 || {
	echo "chaos-smoke: warm-up load failed"; cat "$tmp/parmad.log"; exit 1; }

# Hammer far past capacity: warmed 4x4 traffic must degrade to stale
# answers, cold 6x6 traffic must shed with Retry-After.
"$tmp/parma-load" -addr "$addr" -n 60 -qps 300 -geoms 4x4,6x6 \
	-expect-shed -expect-degraded || {
	echo "chaos-smoke: saturation load did not shed+degrade as required"; cat "$tmp/parmad.log"; exit 1; }

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "chaos-smoke: parmad exited nonzero on SIGTERM"; cat "$tmp/parmad.log"; exit 1; }
daemon_pid=""
grep -q "drained cleanly" "$tmp/parmad.log" || {
	echo "chaos-smoke: no clean-drain line in the daemon log"; cat "$tmp/parmad.log"; exit 1; }

echo "chaos-smoke: parmad shed with Retry-After, served stale degraded answers, drained cleanly"
