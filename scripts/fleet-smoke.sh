#!/bin/sh
# fleet-smoke: the sharded-fleet claims, end to end. Boot three parmad
# workers behind parma-router with the geometry-affinity policy and
# assert, in order:
#
#   1. Affinity pins each geometry to its ring owner (parma-load
#      -expect-affinity over the X-Parma-Backend labels).
#   2. SIGKILL one worker mid-load: zero availability loss beyond
#      shed-with-Retry-After responses, failovers counted on /metrics,
#      the dead worker ejected by the health prober, and its keys
#      re-homed to their ring successors (the worker that owned nothing
#      before the kill starts answering, the dead one never does).
#   3. The router preserves distributed tracing: merged router + worker
#      traces form connected router -> worker -> solver span trees.
#   4. On fresh fleets, affinity strictly beats round-robin on cache hit
#      rate — the reason the policy exists.
#
# The geometry set 6x6..11x11 is chosen deterministically: with backends
# named w0,w1,w2 the ring assigns 7x7 and 10x10 to w0, the rest to w2,
# and nothing to w1 — so killing w0 makes w1's first response the
# re-homing witness. Run via `make fleet-smoke`.
set -eu

tmp=$(mktemp -d fleet-smoke.XXXXXX)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/parmad" ./cmd/parmad
go build -o "$tmp/parma-router" ./cmd/parma-router
go build -o "$tmp/parma-load" ./cmd/parma-load
go build -o "$tmp/parma" ./cmd/parma

GEOMS="6x6,7x7,8x8,9x9,10x10,11x11"

# wait_addr <file> <what>: wait for a daemon to publish its bound address.
wait_addr() {
	for _ in $(seq 1 50); do
		[ -s "$1" ] && break
		sleep 0.1
	done
	[ -s "$1" ] || { echo "fleet-smoke: $2 never published its address"; exit 1; }
	head -n 1 "$1"
}

# start_worker <name> [extra flags...]: boot one parmad on a random port.
start_worker() {
	name=$1; shift
	"$tmp/parmad" -addr 127.0.0.1:0 -addr-file "$tmp/$name.addr" -log-format json \
		"$@" >"$tmp/$name.log" 2>&1 &
	eval "${name}_pid=$!"
	pids="$pids $!"
}

# --- Phase 1+2+3: affinity, failover under SIGKILL, tracing ---------------

start_worker w0 -trace "$tmp/w0-trace.json" -compact-interval 1h
start_worker w1 -trace "$tmp/w1-trace.json" -compact-interval 1h
start_worker w2 -trace "$tmp/w2-trace.json" -compact-interval 1h
a0=$(wait_addr "$tmp/w0.addr" w0)
a1=$(wait_addr "$tmp/w1.addr" w1)
a2=$(wait_addr "$tmp/w2.addr" w2)

"$tmp/parma-router" -addr 127.0.0.1:0 -addr-file "$tmp/router.addr" \
	-policy affinity -backend "w0=$a0,w1=$a1,w2=$a2" \
	-probe-every 50ms -suspect-after 300ms -breaker-threshold 3 \
	-trace "$tmp/router-trace.json" -compact-interval 1h -log-format json \
	>"$tmp/router.log" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
router=$(wait_addr "$tmp/router.addr" parma-router)

# Healthy fleet: every request OK and every geometry pinned to one worker.
"$tmp/parma-load" -target "$router" -n 120 -qps 200 -geoms "$GEOMS" \
	-expect-affinity >"$tmp/load1.out"
grep "w0:" "$tmp/load1.out" >/dev/null || {
	echo "fleet-smoke: w0 served nothing before the kill"; cat "$tmp/load1.out"; exit 1; }

# SIGKILL w0 mid-load. Every request must still succeed (failover replays
# the buffered body on the ring successor) or be shed with Retry-After —
# -allow-shed treats only those as acceptable, anything else fails the run.
"$tmp/parma-load" -target "$router" -n 200 -qps 300 -geoms "$GEOMS" \
	-allow-shed >"$tmp/load2.out" &
load_pid=$!
sleep 0.2
kill -9 "$w0_pid"
wait "$load_pid" || { echo "fleet-smoke: availability lost during worker kill"; cat "$tmp/load2.out"; exit 1; }

# The router must have failed over (counted on /metrics) and the prober
# must have ejected the dead worker.
metrics=$(curl -sf "http://$router/metrics")
echo "$metrics" | awk '$1 == "parma_fleet_failover_total" && $2+0 >= 1 {found=1} END {exit !found}' || {
	echo "fleet-smoke: no failovers counted after SIGKILL"; echo "$metrics" | grep ^parma_fleet || true; exit 1; }
echo "$metrics" | awk '$1 == "parma_fleet_ejected_total" && $2+0 >= 1 {found=1} END {exit !found}' || {
	echo "fleet-smoke: dead worker never ejected"; exit 1; }

# Keys re-home to ring successors: w0's geometries (7x7, 10x10) now land
# on w1, which owned nothing before; w0 never answers again; and the
# shrunken fleet still satisfies the affinity pinning contract.
"$tmp/parma-load" -target "$router" -n 120 -qps 200 -geoms "$GEOMS" \
	-expect-affinity >"$tmp/load3.out"
grep "backends:" "$tmp/load3.out" | grep -q "w1:" || {
	echo "fleet-smoke: orphaned keys did not re-home to the ring successor"; cat "$tmp/load3.out"; exit 1; }
grep "backends:" "$tmp/load3.out" | grep -q "w0:" && {
	echo "fleet-smoke: ejected worker still receiving traffic"; cat "$tmp/load3.out"; exit 1; }

# Graceful shutdown, then the tracing claim: merged router + surviving
# worker traces must form connected span trees that reach from the
# router's HTTP handler through its proxy attempt into the worker's
# handler and down to the solver.
kill -TERM "$router_pid"
wait "$router_pid" || { echo "fleet-smoke: router exited nonzero on SIGTERM"; cat "$tmp/router.log"; exit 1; }
kill -TERM "$w1_pid" "$w2_pid"
wait "$w1_pid" || { echo "fleet-smoke: w1 exited nonzero on SIGTERM"; cat "$tmp/w1.log"; exit 1; }
wait "$w2_pid" || { echo "fleet-smoke: w2 exited nonzero on SIGTERM"; cat "$tmp/w2.log"; exit 1; }
pids=""

"$tmp/parma" tracemerge -o "$tmp/fleet-trace.json" \
	"$tmp/router-trace.json" "$tmp/w1-trace.json" "$tmp/w2-trace.json"
"$tmp/parma" tracecheck -distributed \
	-require fleet/http/recover -require fleet/proxy \
	-require serve/http/recover -require serve/recover -require solver/recover \
	"$tmp/fleet-trace.json"

# --- Phase 4: affinity strictly beats round-robin on cache hit rate -------
# Fresh workers per policy: caches must start cold both times.

run_policy() {
	policy=$1 tag=$2
	start_worker "${tag}0"
	start_worker "${tag}1"
	start_worker "${tag}2"
	b0=$(wait_addr "$tmp/${tag}0.addr" "${tag}0")
	b1=$(wait_addr "$tmp/${tag}1.addr" "${tag}1")
	b2=$(wait_addr "$tmp/${tag}2.addr" "${tag}2")
	"$tmp/parma-router" -addr 127.0.0.1:0 -addr-file "$tmp/${tag}router.addr" \
		-policy "$policy" -backend "w0=$b0,w1=$b1,w2=$b2" \
		>"$tmp/${tag}router.log" 2>&1 &
	rpid=$!
	pids="$pids $rpid"
	raddr=$(wait_addr "$tmp/${tag}router.addr" "${tag}router")
	# Moderate rate: concurrent first-misses for one geometry blur the
	# policy difference, so keep enough spacing that repeat traffic
	# dominates.
	"$tmp/parma-load" -target "$raddr" -n 240 -qps 150 -geoms "$GEOMS" \
		>"$tmp/$tag.out"
	awk '/^cache:/ {split($2, a, "/"); print a[1]}' "$tmp/$tag.out"
}

rr_hits=$(run_policy roundrobin rr)
aff_hits=$(run_policy affinity aff)
[ "$aff_hits" -gt "$rr_hits" ] || {
	echo "fleet-smoke: affinity hit count $aff_hits not strictly above round-robin $rr_hits"
	cat "$tmp/rr.out" "$tmp/aff.out"; exit 1; }

echo "fleet-smoke: affinity pinned, SIGKILL failover lossless, keys re-homed, traces connected, affinity $aff_hits vs round-robin $rr_hits cache hits"
