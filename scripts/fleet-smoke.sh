#!/bin/sh
# fleet-smoke: the sharded-fleet claims, end to end. Boot three parmad
# workers behind parma-router with the geometry-affinity policy and
# assert, in order:
#
#   1. Affinity pins each geometry to its ring owner (parma-load
#      -expect-affinity over the X-Parma-Backend labels).
#   2. SIGKILL one worker mid-load: zero availability loss beyond
#      shed-with-Retry-After responses, failovers counted on /metrics,
#      the dead worker ejected by the health prober, and its keys
#      re-homed to their ring successors (the worker that owned nothing
#      before the kill starts answering, the dead one never does).
#   3. The router preserves distributed tracing: merged router + worker
#      traces form connected router -> worker -> solver span trees.
#   4. On fresh fleets, affinity strictly beats round-robin on cache hit
#      rate — the reason the policy exists.
#   5. Membership churn self-heals: a backend added through the
#      authenticated /admin/backends API takes traffic, a drain-removal
#      completes with its keys warm-handed to ring successors, and the
#      first re-homed request is already a warm-start cache hit
#      (-expect-prewarm-hit) — all with zero non-shed failures while a
#      load run is in flight, including a SIGKILL at the end.
#   6. Hedged /v1/recover beats unhedged tail latency: with one worker
#      injecting 250ms of service delay, a router with -hedge-budget 0.6
#      races a second attempt at the ring successor and its p99 lands
#      strictly below the -hedge-budget 0 baseline.
#
# The geometry set 6x6..11x11 is chosen deterministically: with backends
# named w0,w1,w2 the ring assigns 7x7 and 10x10 to w0, the rest to w2,
# and nothing to w1 — so killing w0 makes w1's first response the
# re-homing witness. Run via `make fleet-smoke`.
set -eu

tmp=$(mktemp -d fleet-smoke.XXXXXX)
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/parmad" ./cmd/parmad
go build -o "$tmp/parma-router" ./cmd/parma-router
go build -o "$tmp/parma-load" ./cmd/parma-load
go build -o "$tmp/parma" ./cmd/parma

GEOMS="6x6,7x7,8x8,9x9,10x10,11x11"

# wait_addr <file> <what>: wait for a daemon to publish its bound address.
wait_addr() {
	for _ in $(seq 1 50); do
		[ -s "$1" ] && break
		sleep 0.1
	done
	[ -s "$1" ] || { echo "fleet-smoke: $2 never published its address"; exit 1; }
	head -n 1 "$1"
}

# start_worker <name> [extra flags...]: boot one parmad on a random port.
start_worker() {
	name=$1; shift
	"$tmp/parmad" -addr 127.0.0.1:0 -addr-file "$tmp/$name.addr" -log-format json \
		"$@" >"$tmp/$name.log" 2>&1 &
	eval "${name}_pid=$!"
	pids="$pids $!"
}

# --- Phase 1+2+3: affinity, failover under SIGKILL, tracing ---------------

start_worker w0 -trace "$tmp/w0-trace.json" -compact-interval 1h
start_worker w1 -trace "$tmp/w1-trace.json" -compact-interval 1h
start_worker w2 -trace "$tmp/w2-trace.json" -compact-interval 1h
a0=$(wait_addr "$tmp/w0.addr" w0)
a1=$(wait_addr "$tmp/w1.addr" w1)
a2=$(wait_addr "$tmp/w2.addr" w2)

"$tmp/parma-router" -addr 127.0.0.1:0 -addr-file "$tmp/router.addr" \
	-policy affinity -backend "w0=$a0,w1=$a1,w2=$a2" \
	-probe-every 50ms -suspect-after 300ms -breaker-threshold 3 \
	-trace "$tmp/router-trace.json" -compact-interval 1h -log-format json \
	>"$tmp/router.log" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
router=$(wait_addr "$tmp/router.addr" parma-router)

# Healthy fleet: every request OK and every geometry pinned to one worker.
"$tmp/parma-load" -target "$router" -n 120 -qps 200 -geoms "$GEOMS" \
	-expect-affinity >"$tmp/load1.out"
grep "w0:" "$tmp/load1.out" >/dev/null || {
	echo "fleet-smoke: w0 served nothing before the kill"; cat "$tmp/load1.out"; exit 1; }

# SIGKILL w0 mid-load. Every request must still succeed (failover replays
# the buffered body on the ring successor) or be shed with Retry-After —
# -allow-shed treats only those as acceptable, anything else fails the run.
"$tmp/parma-load" -target "$router" -n 200 -qps 300 -geoms "$GEOMS" \
	-allow-shed >"$tmp/load2.out" &
load_pid=$!
sleep 0.2
kill -9 "$w0_pid"
wait "$load_pid" || { echo "fleet-smoke: availability lost during worker kill"; cat "$tmp/load2.out"; exit 1; }

# The router must have failed over (counted on /metrics) and the prober
# must have ejected the dead worker.
metrics=$(curl -sf "http://$router/metrics")
echo "$metrics" | awk '$1 == "parma_fleet_failover_total" && $2+0 >= 1 {found=1} END {exit !found}' || {
	echo "fleet-smoke: no failovers counted after SIGKILL"; echo "$metrics" | grep ^parma_fleet || true; exit 1; }
echo "$metrics" | awk '$1 == "parma_fleet_ejected_total" && $2+0 >= 1 {found=1} END {exit !found}' || {
	echo "fleet-smoke: dead worker never ejected"; exit 1; }

# Keys re-home to ring successors: w0's geometries (7x7, 10x10) now land
# on w1, which owned nothing before; w0 never answers again; and the
# shrunken fleet still satisfies the affinity pinning contract.
"$tmp/parma-load" -target "$router" -n 120 -qps 200 -geoms "$GEOMS" \
	-expect-affinity >"$tmp/load3.out"
grep "backends:" "$tmp/load3.out" | grep -q "w1:" || {
	echo "fleet-smoke: orphaned keys did not re-home to the ring successor"; cat "$tmp/load3.out"; exit 1; }
grep "backends:" "$tmp/load3.out" | grep -q "w0:" && {
	echo "fleet-smoke: ejected worker still receiving traffic"; cat "$tmp/load3.out"; exit 1; }

# Graceful shutdown, then the tracing claim: merged router + surviving
# worker traces must form connected span trees that reach from the
# router's HTTP handler through its proxy attempt into the worker's
# handler and down to the solver.
kill -TERM "$router_pid"
wait "$router_pid" || { echo "fleet-smoke: router exited nonzero on SIGTERM"; cat "$tmp/router.log"; exit 1; }
kill -TERM "$w1_pid" "$w2_pid"
wait "$w1_pid" || { echo "fleet-smoke: w1 exited nonzero on SIGTERM"; cat "$tmp/w1.log"; exit 1; }
wait "$w2_pid" || { echo "fleet-smoke: w2 exited nonzero on SIGTERM"; cat "$tmp/w2.log"; exit 1; }
pids=""

"$tmp/parma" tracemerge -o "$tmp/fleet-trace.json" \
	"$tmp/router-trace.json" "$tmp/w1-trace.json" "$tmp/w2-trace.json"
"$tmp/parma" tracecheck -distributed \
	-require fleet/http/recover -require fleet/proxy \
	-require serve/http/recover -require serve/recover -require solver/recover \
	"$tmp/fleet-trace.json"

# --- Phase 4: affinity strictly beats round-robin on cache hit rate -------
# Fresh workers per policy: caches must start cold both times.

run_policy() {
	policy=$1 tag=$2
	start_worker "${tag}0"
	start_worker "${tag}1"
	start_worker "${tag}2"
	b0=$(wait_addr "$tmp/${tag}0.addr" "${tag}0")
	b1=$(wait_addr "$tmp/${tag}1.addr" "${tag}1")
	b2=$(wait_addr "$tmp/${tag}2.addr" "${tag}2")
	"$tmp/parma-router" -addr 127.0.0.1:0 -addr-file "$tmp/${tag}router.addr" \
		-policy "$policy" -backend "w0=$b0,w1=$b1,w2=$b2" \
		>"$tmp/${tag}router.log" 2>&1 &
	rpid=$!
	pids="$pids $rpid"
	raddr=$(wait_addr "$tmp/${tag}router.addr" "${tag}router")
	# Moderate rate: concurrent first-misses for one geometry blur the
	# policy difference, so keep enough spacing that repeat traffic
	# dominates.
	"$tmp/parma-load" -target "$raddr" -n 240 -qps 150 -geoms "$GEOMS" \
		>"$tmp/$tag.out"
	awk '/^cache:/ {split($2, a, "/"); print a[1]}' "$tmp/$tag.out"
}

rr_hits=$(run_policy roundrobin rr)
aff_hits=$(run_policy affinity aff)
[ "$aff_hits" -gt "$rr_hits" ] || {
	echo "fleet-smoke: affinity hit count $aff_hits not strictly above round-robin $rr_hits"
	cat "$tmp/rr.out" "$tmp/aff.out"; exit 1; }

# --- Phase 5: membership churn with coordinated drain and warm handoff ----
# Three workers c0,c1,c2; under load, c3 joins through the admin API and
# c0 is drain-removed. Ring arithmetic (checked in TestRehomedKeysMatch-
# OwnerDelta) moves 8x8 and 10x10 to c3 on the join and 6x6 on the
# removal — all warm-handed, so the first post-churn request per geometry
# must be a warm-start cache hit. Then SIGKILL c1 to prove the churned
# fleet still fails over losslessly.

ADMIN_TOKEN=churn-smoke-secret

start_worker c0 -compact-interval 1h
start_worker c1 -compact-interval 1h
start_worker c2 -compact-interval 1h
ca0=$(wait_addr "$tmp/c0.addr" c0)
ca1=$(wait_addr "$tmp/c1.addr" c1)
ca2=$(wait_addr "$tmp/c2.addr" c2)

"$tmp/parma-router" -addr 127.0.0.1:0 -addr-file "$tmp/crouter.addr" \
	-policy affinity -backend "c0=$ca0,c1=$ca1,c2=$ca2" \
	-probe-every 50ms -suspect-after 300ms -breaker-threshold 3 \
	-admin-token "$ADMIN_TOKEN" -drain-timeout 5s -log-format json \
	>"$tmp/crouter.log" 2>&1 &
crouter_pid=$!
pids="$pids $crouter_pid"
crouter=$(wait_addr "$tmp/crouter.addr" crouter)

# The admin API must refuse unauthenticated callers.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$crouter/admin/backends")
[ "$code" = "401" ] || {
	echo "fleet-smoke: unauthenticated admin request answered $code, want 401"; exit 1; }

# Warm every geometry so the departing owners have warm state to hand off.
"$tmp/parma-load" -target "$crouter" -n 120 -qps 200 -geoms "$GEOMS" \
	-measure-frac 0 >"$tmp/churn-warm.out"

# Churn under fire: membership changes land mid-load and nothing beyond
# shed-with-Retry-After may fail.
"$tmp/parma-load" -target "$crouter" -n 300 -qps 200 -geoms "$GEOMS" \
	-measure-frac 0 -allow-shed >"$tmp/churn-load.out" &
churn_load_pid=$!

sleep 0.3
start_worker c3 -compact-interval 1h
ca3=$(wait_addr "$tmp/c3.addr" c3)
add_resp=$(curl -sf -X POST -H "X-Parma-Admin-Token: $ADMIN_TOKEN" \
	-H "Content-Type: application/json" -d "{\"name\":\"c3\",\"url\":\"$ca3\"}" \
	"http://$crouter/admin/backends") || {
	echo "fleet-smoke: admin add of c3 failed"; cat "$tmp/crouter.log"; exit 1; }
echo "$add_resp" | grep -q '"c3"' || {
	echo "fleet-smoke: add response does not list the joiner: $add_resp"; exit 1; }

sleep 0.3
rm_resp=$(curl -sf -X DELETE -H "X-Parma-Admin-Token: $ADMIN_TOKEN" \
	"http://$crouter/admin/backends/c0") || {
	echo "fleet-smoke: coordinated removal of c0 failed"; cat "$tmp/crouter.log"; exit 1; }
echo "$rm_resp" | grep -q '"drained":true' || {
	echo "fleet-smoke: removal did not report a completed drain: $rm_resp"; exit 1; }

wait "$churn_load_pid" || {
	echo "fleet-smoke: availability lost during membership churn"; cat "$tmp/churn-load.out"; exit 1; }

# Warm handoff proof, BEFORE any kill (a corpse's warm state is
# unrecoverable): the first request per geometry — including the keys the
# churn just re-homed to c3 — must be a warm-start cache hit.
sleep 0.5
"$tmp/parma-load" -target "$crouter" -n 60 -qps 200 -geoms "$GEOMS" \
	-measure-frac 0 -expect-prewarm-hit >"$tmp/churn-prewarm.out" || {
	echo "fleet-smoke: re-homed keys were not prewarmed"; cat "$tmp/churn-prewarm.out"; exit 1; }
grep "backends:" "$tmp/churn-prewarm.out" | grep -q "c3:" || {
	echo "fleet-smoke: joiner c3 serving nothing after churn"; cat "$tmp/churn-prewarm.out"; exit 1; }
grep "backends:" "$tmp/churn-prewarm.out" | grep -q "c0:" && {
	echo "fleet-smoke: removed member c0 still receiving traffic"; cat "$tmp/churn-prewarm.out"; exit 1; }

cmetrics=$(curl -sf "http://$crouter/metrics")
echo "$cmetrics" | awk '$1 == "parma_fleet_membership_changes_total" && $2+0 >= 2 {found=1} END {exit !found}' || {
	echo "fleet-smoke: membership changes not counted"; echo "$cmetrics" | grep ^parma_fleet || true; exit 1; }
echo "$cmetrics" | awk '$1 == "parma_fleet_prewarm_keys_total" && $2+0 >= 1 {found=1} END {exit !found}' || {
	echo "fleet-smoke: no warm-handoff keys counted"; echo "$cmetrics" | grep ^parma_fleet || true; exit 1; }

# The churned fleet still heals around a SIGKILL.
"$tmp/parma-load" -target "$crouter" -n 200 -qps 300 -geoms "$GEOMS" \
	-measure-frac 0 -allow-shed >"$tmp/churn-kill.out" &
churn_kill_pid=$!
sleep 0.2
kill -9 "$c1_pid"
wait "$churn_kill_pid" || {
	echo "fleet-smoke: availability lost on SIGKILL after churn"; cat "$tmp/churn-kill.out"; exit 1; }

kill -TERM "$crouter_pid" "$c0_pid" "$c2_pid" "$c3_pid" 2>/dev/null || true

# --- Phase 6: hedged requests beat the slow-owner tail --------------------
# s1 injects 250ms of service delay and owns 10x10 + 11x11, so a third of
# unhedged requests eat the full delay. The hedged router launches a
# second attempt at the ring successor after at most 40ms; its p99 must
# land strictly below the unhedged baseline.

start_worker s0 -compact-interval 1h
start_worker s1 -compact-interval 1h -inject-delay 250ms
sa0=$(wait_addr "$tmp/s0.addr" s0)
sa1=$(wait_addr "$tmp/s1.addr" s1)

run_hedge() {
	tag=$1; shift
	"$tmp/parma-router" -addr 127.0.0.1:0 -addr-file "$tmp/${tag}router.addr" \
		-policy affinity -backend "s0=$sa0,s1=$sa1" \
		-probe-every 50ms -suspect-after 2s "$@" \
		>"$tmp/${tag}router.log" 2>&1 &
	hpid=$!
	pids="$pids $hpid"
	haddr=$(wait_addr "$tmp/${tag}router.addr" "${tag}router")
	shift $#
	"$tmp/parma-load" -target "$haddr" -n 120 -qps 100 -geoms "$GEOMS" \
		-measure-frac 0 -latency-out "$tmp/$tag-latency.json" \
		$EXTRA_LOAD_FLAGS >"$tmp/$tag.out" || {
		echo "fleet-smoke: $tag load run failed"; cat "$tmp/$tag.out"; exit 1; }
	kill -TERM "$hpid" 2>/dev/null || true
}

EXTRA_LOAD_FLAGS=""
run_hedge unhedged -hedge-budget 0
EXTRA_LOAD_FLAGS="-hedge-report"
run_hedge hedged -hedge-budget 0.6 -hedge-delay-min 5ms -hedge-delay-max 40ms

p99() { sed 's/.*"p99_ms"://;s/[,}].*//' "$1"; }
up99=$(p99 "$tmp/unhedged-latency.json")
hp99=$(p99 "$tmp/hedged-latency.json")
awk -v h="$hp99" -v u="$up99" 'BEGIN { exit !(h < u) }' || {
	echo "fleet-smoke: hedged p99 ${hp99}ms not below unhedged p99 ${up99}ms"
	cat "$tmp/unhedged-latency.json" "$tmp/hedged-latency.json" "$tmp/hedged.out"; exit 1; }

echo "fleet-smoke: affinity pinned, SIGKILL failover lossless, keys re-homed, traces connected, affinity $aff_hits vs round-robin $rr_hits cache hits, churn drained+prewarmed, hedged p99 ${hp99}ms < unhedged ${up99}ms"
