#!/bin/sh
# serve-smoke: boot parmad on a random port, drive a mixed-geometry load
# through parma-load, assert every request succeeds with a healthy cache
# hit rate and the serving metrics exposed, then shut the daemon down
# gracefully and require a clean drain. Run via `make serve-smoke`.
set -eu

tmp=$(mktemp -d serve-smoke.XXXXXX)
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/parmad" ./cmd/parmad
go build -o "$tmp/parma-load" ./cmd/parma-load

"$tmp/parmad" -addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/parmad.log" 2>&1 &
daemon_pid=$!

# Wait for the daemon to publish its bound address.
for _ in $(seq 1 50); do
	[ -s "$tmp/addr" ] && break
	sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "serve-smoke: parmad never published its address"; cat "$tmp/parmad.log"; exit 1; }
addr=$(head -n 1 "$tmp/addr")

# 200 mixed requests; the run itself asserts zero failures, a >50% cache
# hit rate, and the batch-size / queue-depth series on /metrics.
"$tmp/parma-load" -addr "$addr" -n 200 -qps 150 -geoms 4x4,5x5,6x6 \
	-min-cache-hit-rate 0.5 -check-metrics

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "serve-smoke: parmad exited nonzero on SIGTERM"; cat "$tmp/parmad.log"; exit 1; }
daemon_pid=""
grep -q "drained cleanly" "$tmp/parmad.log" || {
	echo "serve-smoke: no clean-drain line in the daemon log"; cat "$tmp/parmad.log"; exit 1; }

echo "serve-smoke: 200 requests served, cache and metrics healthy, clean drain"
