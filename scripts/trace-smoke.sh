#!/bin/sh
# trace-smoke: end-to-end distributed tracing, in both deployment shapes.
#
# Daemon leg: boot parmad with tracing, an SLO, and the in-process MPI
# formation cross-check, drive a traced mixed load through parma-load
# (which asserts every response carries a trace_id and a latency breakdown
# whose stages sum to its total), drain, and require that the daemon's
# Chrome trace contains one connected span tree per request reaching from
# the HTTP handler through the solver to the MPI ranks.
#
# Multi-process leg: run parma-mpi -launch with per-rank trace files, merge
# them with parma tracemerge, and require the merged timeline to form one
# connected tree rooted at rank 0's job span — cross-process parenting over
# real TCP, not just in-process channels. Run via `make trace-smoke`.
set -eu

tmp=$(mktemp -d trace-smoke.XXXXXX)
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/parmad" ./cmd/parmad
go build -o "$tmp/parma-load" ./cmd/parma-load
go build -o "$tmp/parma" ./cmd/parma
go build -o "$tmp/parma-mpi" ./cmd/parma-mpi

# --- Daemon leg -----------------------------------------------------------

"$tmp/parmad" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
	-log-format json -slo p99=250ms -validate-ranks 2 \
	-trace "$tmp/serve-trace.json" -compact-interval 1h \
	>"$tmp/parmad.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 50); do
	[ -s "$tmp/addr" ] && break
	sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "trace-smoke: parmad never published its address"; cat "$tmp/parmad.log"; exit 1; }
addr=$(head -n 1 "$tmp/addr")

# Traced mixed load: every OK response must carry a trace_id and a stage
# breakdown summing to its total; /metrics must expose the RED series,
# stage histograms, and the multi-window SLO burn-rate gauges.
"$tmp/parma-load" -addr "$addr" -n 40 -qps 100 -geoms 4x4,5x5 \
	-check-timings -check-traces -check-metrics -check-slo

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "trace-smoke: parmad exited nonzero on SIGTERM"; cat "$tmp/parmad.log"; exit 1; }
daemon_pid=""
grep -q "drained cleanly" "$tmp/parmad.log" || {
	echo "trace-smoke: no clean-drain line in the daemon log"; cat "$tmp/parmad.log"; exit 1; }

# Every traced request must form one connected tree; at least one must
# reach handler -> queue -> solver -> MPI rank inside a single tree.
"$tmp/parma" tracecheck -distributed \
	-require serve/http/recover -require serve/queue -require serve/recover \
	-require solver/recover -require mpi/rank -require mpi/formation \
	"$tmp/serve-trace.json"

# --- Multi-process leg ----------------------------------------------------

"$tmp/parma-mpi" -launch -ranks 3 -n 8 -trace-dir "$tmp/ranks" >"$tmp/mpi.log" 2>&1 || {
	echo "trace-smoke: parma-mpi launch failed"; cat "$tmp/mpi.log"; exit 1; }
"$tmp/parma" tracemerge -o "$tmp/mpi-trace.json" \
	"$tmp/ranks/rank0.json" "$tmp/ranks/rank1.json" "$tmp/ranks/rank2.json"
"$tmp/parma" tracecheck -distributed \
	-require mpi/job -require mpi/formation -require mpi/allreduce \
	"$tmp/mpi-trace.json"

echo "trace-smoke: connected span trees across serve, solver, and MPI ranks in both deployment shapes"
