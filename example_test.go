package parma_test

import (
	"fmt"
	"log"

	"parma"
)

// ExampleAnalyze shows the topological invariants of the paper's Figure 1
// device: a 3x3 MEA has 18 joints, 9 resistors, and 4 independent
// Kirchhoff loops.
func ExampleAnalyze() {
	report := parma.Analyze(parma.NewSquareArray(3))
	fmt.Println("joints:", report.Joints)
	fmt.Println("resistors:", report.Resistors)
	fmt.Println("independent loops:", report.Betti1)
	// Output:
	// joints: 18
	// resistors: 9
	// independent loops: 4
}

// ExampleSystemCensus shows the polynomial system size the joint-constraint
// conversion produces: 2n³ equations and (2n−1)n² unknowns.
func ExampleSystemCensus() {
	census := parma.SystemCensus(parma.NewSquareArray(100))
	fmt.Println("equations:", census.Equations)
	fmt.Println("unknowns:", census.Unknowns)
	// Output:
	// equations: 2000000
	// unknowns: 1990000
}

// ExampleForm forms the whole equation system with the fine-grained
// strategy and confirms it matches the serial baseline exactly.
func ExampleForm() {
	_, z, err := parma.Synthesize(parma.MediumConfig{Rows: 6, Cols: 6, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	prob, err := parma.NewProblem(parma.NewSquareArray(6), z, parma.SourceVoltage)
	if err != nil {
		log.Fatal(err)
	}
	serial := parma.Form(prob, parma.Serial{}, parma.FormationOptions{})
	fine := parma.Form(prob, parma.FineGrained{}, parma.FormationOptions{Workers: 4})
	fmt.Println("equations:", fine.Count)
	fmt.Println("identical to serial:", fine.Hash == serial.Hash)
	// Output:
	// equations: 432
	// identical to serial: true
}

// ExampleRecover closes the loop: measure a known field, recover it from
// the measurements alone, and report the worst-case relative error.
func ExampleRecover() {
	a := parma.NewSquareArray(4)
	truth := parma.UniformField(4, 4, 5000)
	truth.Set(1, 2, 20000) // an anomalous cell

	z, err := parma.Measure(a, truth)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := parma.Recover(a, z, parma.RecoverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered within 0.01%:", rec.R.MaxAbsDiff(truth)/truth.Max() < 1e-4)
	fmt.Println("anomaly recovered:", rec.R.At(1, 2) > 15000)
	// Output:
	// recovered within 0.01%: true
	// anomaly recovered: true
}

// ExampleDetect runs anomaly detection on a resistance field.
func ExampleDetect() {
	f := parma.UniformField(5, 5, 3000)
	f.Set(2, 2, 18000)
	det := parma.Detect(f, parma.DetectOptions{Factor: 2})
	fmt.Println("regions:", len(det.Regions))
	fmt.Println("cells in region 0:", det.Regions[0].Size())
	// Output:
	// regions: 1
	// cells in region 0: 1
}
