package parma

// Benchmark harness: one benchmark family per evaluation figure of the
// paper, plus ablations of the design choices called out in DESIGN.md.
// Fixed moderate sizes keep `go test -bench=.` tractable on a laptop; the
// cmd/parma-bench tool runs the full-scale sweeps and prints the figure
// series.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"parma/internal/ann"
	"parma/internal/circuit"
	"parma/internal/core"
	"parma/internal/experiments"
	"parma/internal/gf2"
	"parma/internal/grid"
	"parma/internal/hyper"
	"parma/internal/kirchhoff"
	"parma/internal/manifold"
	"parma/internal/mat"
	"parma/internal/mpi"
	"parma/internal/parallel"
	"parma/internal/paths"
	"parma/internal/sched"
	"parma/internal/solver"
	"parma/internal/sparse"
	"parma/internal/topo"
)

func benchProblem(b *testing.B, n int) *kirchhoff.Problem {
	b.Helper()
	p, err := experiments.BuildProblem(n, 42)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- Figure 6: strategy comparison at a fixed size ---

func benchStrategy(b *testing.B, s parallel.Strategy, opts parallel.Options) {
	p := benchProblem(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Run(p, opts)
		if res.Count == 0 {
			b.Fatal("no equations formed")
		}
	}
}

func BenchmarkFigure6SingleThread(b *testing.B) {
	benchStrategy(b, parallel.Serial{}, parallel.Options{})
}

func BenchmarkFigure6Parallel(b *testing.B) {
	benchStrategy(b, parallel.FourWay{}, parallel.Options{})
}

func BenchmarkFigure6BalancedParallel(b *testing.B) {
	benchStrategy(b, parallel.Balanced{}, parallel.Options{Workers: 4})
}

func BenchmarkFigure6PyMP(b *testing.B) {
	benchStrategy(b, parallel.FineGrained{}, parallel.Options{Workers: 8})
}

// --- Figure 7: PyMP parallelism sweep ---

func BenchmarkFigure7PyMP(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchStrategy(b, parallel.FineGrained{}, parallel.Options{Workers: k})
		})
	}
}

// --- Figure 8: formation with full retention (memory workload) ---

func BenchmarkFigure8CollectedFormation(b *testing.B) {
	p := benchProblem(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := parallel.FineGrained{}.Run(p, parallel.Options{Workers: 4, Collect: true})
		if len(res.Equations) != kirchhoff.SystemCensus(p.Array).Equations {
			b.Fatal("missing equations")
		}
	}
}

// --- Figure 9: end-to-end formation + disk I/O ---

func BenchmarkFigure9WriteSharded(b *testing.B) {
	p := benchProblem(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "parma-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n, err := parallel.WriteSharded(p, dir, 4, sched.Dynamic, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.SetBytes(n)
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// --- Figure 10: distributed formation on the MPI runtime ---

func BenchmarkFigure10MPI(b *testing.B) {
	p := benchProblem(b, 12)
	for _, ranks := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(ranks, mpi.CostModel{})
				errs := w.Run(func(c *mpi.Comm) error {
					_, err := mpi.DistributedFormation(c, p)
					return err
				})
				if err := mpi.FirstError(errs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §II-C: exponential path baseline vs polynomial joint constraints ---

func BenchmarkPathBaseline(b *testing.B) {
	const n = 4 // the exponential wall makes larger sizes pointless
	a := grid.NewSquare(n)
	r := grid.UniformField(n, n, 5000)
	z, err := circuit.MeasureAll(a, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paths.BuildSystem(a, z); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJointFormationSameSize(b *testing.B) {
	p := benchProblem(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.Serial{}.Run(p, parallel.Options{})
	}
}

// --- §III: homology machinery ---

func BenchmarkBetti(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := grid.NewSquare(n)
			for i := 0; i < b.N; i++ {
				c := topo.FromMEA(a)
				if c.Betti(1) != (n-1)*(n-1) {
					b.Fatal("wrong Betti number")
				}
			}
		})
	}
}

func BenchmarkCycleBasis(b *testing.B) {
	g := grid.NewSquare(32).JointGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if basis := topo.CycleBasis(g); len(basis) != 31*31 {
			b.Fatal("wrong basis size")
		}
	}
}

// --- Recovery ---

func BenchmarkRecover(b *testing.B) {
	const n = 5
	a := grid.NewSquare(n)
	r := grid.UniformField(n, n, 4000)
	r.Set(2, 2, 16000)
	z, err := circuit.MeasureAll(a, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Recover(context.Background(), a, z, solver.RecoverOptions{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation 1: chunk policy for the fine-grained strategy ---

func BenchmarkAblationChunking(b *testing.B) {
	policies := map[string]sched.Policy{
		"static": sched.Static, "dynamic": sched.Dynamic, "guided": sched.Guided,
	}
	for name, policy := range policies {
		b.Run(name, func(b *testing.B) {
			benchStrategy(b, parallel.FineGrained{},
				parallel.Options{Workers: 8, Policy: policy, Chunk: 32})
		})
	}
}

// --- Ablation 2: task granularity ---

func BenchmarkAblationGranularity(b *testing.B) {
	b.Run("category", func(b *testing.B) {
		benchStrategy(b, parallel.FourWay{}, parallel.Options{})
	})
	b.Run("pair-category", func(b *testing.B) {
		benchStrategy(b, parallel.Balanced{}, parallel.Options{Workers: 8})
	})
	b.Run("equation", func(b *testing.B) {
		benchStrategy(b, parallel.FineGrained{}, parallel.Options{Workers: 8, Chunk: 1})
	})
}

// --- Ablation 3: deterministic balance vs runtime stealing ---

func BenchmarkAblationBalanceVsStealing(b *testing.B) {
	b.Run("lpt", func(b *testing.B) {
		benchStrategy(b, parallel.Balanced{}, parallel.Options{Workers: 8})
	})
	b.Run("stealing", func(b *testing.B) {
		benchStrategy(b, parallel.Stealing{}, parallel.Options{Workers: 8})
	})
}

// --- Ablation: Betti-guided pair assignment vs round-robin ---

func benchPairPartition(b *testing.B, assign []int, workers int) {
	p := benchProblem(b, 16)
	cols := p.Array.Cols()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sink := uint64(0)
				for pair, owner := range assign {
					if owner != w {
						continue
					}
					p.FormPair(pair/cols, pair%cols, func(e kirchhoff.Equation) {
						sink ^= kirchhoff.Checksum(1, e)
					})
				}
				if sink == 42 {
					panic("unreachable")
				}
			}(w)
		}
		wg.Wait()
	}
}

func BenchmarkAblationBettiPartition(b *testing.B) {
	const workers = 8
	a := grid.NewSquare(16)
	b.Run("betti-blocks", func(b *testing.B) {
		benchPairPartition(b, core.PairAssignment(a, workers), workers)
	})
	b.Run("round-robin", func(b *testing.B) {
		assign := make([]int, a.Pairs())
		for pair := range assign {
			assign[pair] = pair % workers
		}
		benchPairPartition(b, assign, workers)
	})
}

// --- Ablation 4: bit-packed GF(2) vs naive boolean elimination ---

func naiveBoolRank(m [][]bool) int {
	rows := len(m)
	if rows == 0 {
		return 0
	}
	cols := len(m[0])
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if m[r][col] {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		for r := rank + 1; r < rows; r++ {
			if m[r][col] {
				for k := col; k < cols; k++ {
					m[r][k] = m[r][k] != m[rank][k]
				}
			}
		}
		rank++
	}
	return rank
}

func BenchmarkAblationGF2(b *testing.B) {
	// The boundary matrix ∂₁ of a 24x24 MEA.
	a := grid.NewSquare(24)
	c := topo.FromMEA(a)
	d1 := c.BoundaryMatrix(1)
	b.Run("bitpacked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if gf2.Rank(d1) == 0 {
				b.Fatal("rank 0")
			}
		}
	})
	b.Run("naive-bool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			boolMat := make([][]bool, d1.Rows())
			for r := range boolMat {
				boolMat[r] = make([]bool, d1.Cols())
				for col := 0; col < d1.Cols(); col++ {
					boolMat[r][col] = d1.Get(r, col)
				}
			}
			b.StartTimer()
			if naiveBoolRank(boolMat) == 0 {
				b.Fatal("rank 0")
			}
		}
	})
}

// --- Ablation 5: dense LU vs sparse CG for the wire Laplacian ---

func BenchmarkAblationLaplacian(b *testing.B) {
	const n = 48
	a := grid.NewSquare(n)
	r := grid.UniformField(n, n, 5000)
	r.Set(10, 10, 20000)
	b.Run("dense-lu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := circuit.NewSolver(a, r)
			if err != nil {
				b.Fatal(err)
			}
			if s.EffectiveResistance(0, 0) <= 0 {
				b.Fatal("bad Z")
			}
		}
	})
	b.Run("sparse-cg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := circuit.NewCGSolver(a, r, 1e-10)
			z, err := s.EffectiveResistance(0, 0)
			if err != nil || z <= 0 {
				b.Fatalf("bad Z: %v %v", z, err)
			}
		}
	})
}

// --- §IV-B: manifold machinery ---

func BenchmarkManifoldStokes(b *testing.B) {
	form := manifold.NewOneForm(128, 128)
	for i := 0; i < 128; i++ {
		for j := 0; j+1 < 128; j++ {
			form.SetH(i, j, float64(i*j%7)-3)
		}
	}
	for i := 0; i+1 < 128; i++ {
		for j := 0; j < 128; j++ {
			form.SetV(i, j, float64((i+j)%5)-2)
		}
	}
	patches := form.SplitPatches(8, 8)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			full := manifold.Patch{I0: 0, I1: 127, J0: 0, J1: 127}
			want := form.Circulation(full)
			for i := 0; i < b.N; i++ {
				got, _ := form.ParallelCurlIntegral(patches, workers)
				if diff := got - want; diff > 1e-6 || diff < -1e-6 {
					b.Fatal("Stokes identity violated")
				}
			}
		})
	}
}

// --- Extensions: classical reconstructions, ANN, SNF, masked, pipeline ---

func BenchmarkClassicalReconstruction(b *testing.B) {
	const n = 6
	a := grid.NewSquare(n)
	r := grid.UniformField(n, n, 5000)
	r.Set(3, 3, 15000)
	z, err := circuit.MeasureAll(a, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("lbp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.LBP(a, z); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tikhonov", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Tikhonov(a, z, solver.TikhonovOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("landweber", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Landweber(a, z, solver.LandweberOptions{Iterations: 100}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("levenberg-marquardt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Recover(context.Background(), a, z, solver.RecoverOptions{Tol: 1e-8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkANNTraining(b *testing.B) {
	d, err := ann.Generate(ann.DatasetConfig{Rows: 3, Cols: 3, Samples: 128, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := ann.NewMLP(int64(i), 9, 32, 9)
		net.Train(d.Features, d.Labels, ann.TrainOptions{Epochs: 5, Seed: int64(i)})
	}
}

func BenchmarkSmithNormalForm(b *testing.B) {
	// The oriented ∂₂ of a quotient torus: 32 triangles on 16 vertices.
	c := topo.NewComplex()
	id := func(i, j int) int { return ((i%4+4)%4)*4 + ((j%4 + 4) % 4) }
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c.Add(topo.NewSimplex(id(i, j), id(i+1, j), id(i+1, j+1)))
			c.Add(topo.NewSimplex(id(i, j), id(i, j+1), id(i+1, j+1)))
		}
	}
	d2 := c.IntBoundaryMatrix(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, rank := topo.SmithDiagonal(d2); rank == 0 {
			b.Fatal("rank 0")
		}
	}
}

func BenchmarkMaskedMeasurement(b *testing.B) {
	const n = 16
	a := grid.NewSquare(n)
	r := grid.UniformField(n, n, 5000)
	mask := grid.FullMaskFor(a)
	mask.Disable(3, 3)
	mask.DisableWire(false, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.MeasureAllMasked(a, r, mask); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWritePipelined(b *testing.B) {
	p := benchProblem(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := parallel.WritePipelined(p, discard{}, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n)
	}
}

func BenchmarkHyperLattice(b *testing.B) {
	l := hyper.NewLattice(8, 8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := l.Graph()
		if g.CyclomaticNumber() != l.CycleRank() {
			b.Fatal("cycle rank mismatch")
		}
	}
}

// --- Substrate microbenches ---

func BenchmarkSparseMulVec(b *testing.B) {
	const n = 256
	bu := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		bu.Add(i, i, 4)
		if i+1 < n {
			bu.Add(i, i+1, -1)
			bu.Add(i+1, i, -1)
		}
	}
	m := bu.Build()
	x := mat.NewVector(n)
	for i := range x {
		x[i] = float64(i)
	}
	y := mat.NewVector(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(y, x)
	}
}

func BenchmarkEquationSerialize(b *testing.B) {
	p := benchProblem(b, 8)
	eqs := p.FormAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := kirchhoff.WriteSystem(discard{}, eqs)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
