package parma

import (
	"io"

	"parma/internal/grid"
	"parma/internal/tda"
)

// Topological data analysis of resistance fields: superlevel-set
// filtrations whose Betti numbers describe anomaly morphology — how many
// separate lesions, and whether any are ring-shaped.

// MorphologyReport classifies the anomaly structure at one threshold.
type MorphologyReport = tda.Morphology

// BettiPoint is one sample of a filtration's Betti curve.
type BettiPoint = tda.Point

// ClassifyMorphology reports the topology of the field's superlevel set at
// the threshold: β₀ separate regions, β₁ ring-shaped ones.
func ClassifyMorphology(f *Field, threshold float64) MorphologyReport {
	return tda.Classify(f, threshold)
}

// BettiCurve samples the superlevel filtration of a field across
// thresholds (descending), returning components, holes, and cell counts.
func BettiCurve(f *Field, thresholds []float64) []BettiPoint {
	return tda.BettiCurve(f, thresholds)
}

// AutoThresholds picks count thresholds evenly spanning the field's range.
func AutoThresholds(f *Field, count int) []float64 { return tda.AutoThresholds(f, count) }

// WriteHeatmap renders a field as an ASCII PGM image (min → black,
// max → white); +Inf renders white.
func WriteHeatmap(w io.Writer, f *Field) error { return grid.WritePGM(w, f) }

// WriteJointGraphDOT renders the array's joint-level graph (Figure 1) in
// Graphviz DOT format.
func WriteJointGraphDOT(w io.Writer, a Array, name string) error {
	return a.JointGraph().WriteDOT(w, name)
}

// WriteWireGraphDOT renders the wire-level abstraction (Figure 2) in DOT.
func WriteWireGraphDOT(w io.Writer, a Array, name string) error {
	return a.WireGraph().WriteDOT(w, name)
}
